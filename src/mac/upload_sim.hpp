#ifndef SICMAC_MAC_UPLOAD_SIM_HPP
#define SICMAC_MAC_UPLOAD_SIM_HPP

/// \file upload_sim.hpp
/// End-to-end upload experiments on the discrete-event simulator:
///
///  - run_dcf_upload: backlogged clients contend with plain CSMA/CA. With
///    `sic_at_ap` the AP's receiver recovers collided pairs (capture +
///    SIC), turning collisions from pure waste into deliveries.
///  - run_scheduled_upload: the AP executes a Section 6 SIC-aware schedule
///    (client pairing, optional power control) with no contention; every
///    planned concurrent pair must actually decode under the medium's
///    receiver model, which makes this an executable proof of the
///    scheduler's feasibility conditions.
///
/// The scheduled executor is *closed-loop*: it confirms every frame
/// against the AP's receive counters and, under the injected faults of
/// mac/fault_model.hpp (stale RSS, cancellation failures, ACK loss),
/// recovers via bounded per-slot retries, graceful mode degradation
/// (multirate -> SIC -> power control -> serial), demotion of
/// chronically-failing clients to solo slots, and periodic re-estimation +
/// re-matching of the residual backlog through core::schedule_upload.
/// With every fault knob at zero the recovery layer never engages and the
/// run is bit-identical to the open-loop executor it replaced.
///
/// Node ids: AP = 0, client k = k + 1.

#include <cstdint>
#include <span>
#include <vector>

#include "channel/link.hpp"
#include "core/scheduler.hpp"
#include "mac/fault_model.hpp"
#include "mac/medium.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::mac {

/// Recovery policy of the closed-loop scheduled executor.
struct RecoveryConfig {
  /// Master switch. Off = open-loop baseline: failures become silent
  /// unrecovered drops, exactly the seed behavior under faults.
  bool enabled = true;
  /// Total transmissions allowed per frame before it is dropped as
  /// unrecovered (1 = the original attempt, no retries).
  int max_attempts_per_frame = 8;
  /// A client whose frame failed this many times is demoted: it is no
  /// longer offered for pairing at re-match time and drains solo.
  int demote_after_failures = 2;
  /// Extra attenuation shaved off a client's rate-selection SNR per prior
  /// failure — classic rate fallback, which guarantees convergence once
  /// the backoff overtakes the estimation error.
  Decibels retry_backoff{3.0};
  /// Upper bound on re-estimation + re-matching rounds after the planned
  /// schedule; survivors past the last round are dropped as unrecovered.
  int max_rematch_rounds = 32;
  /// Scheduler options used when re-matching the residual backlog (packet
  /// size is taken from the UploadSimConfig; set admission_margin_db here
  /// to re-plan with headroom).
  core::SchedulerOptions rematch_options{};
};

struct UploadSimConfig {
  double packet_bits = 12000.0;
  int frames_per_client = 1;
  bool sic_at_ap = true;
  /// Fraction of the clean best feasible rate the stations actually use.
  /// 1.0 is the paper's ideal-rate assumption (collisions are then never
  /// SIC-decodable); lower values model the slack a practical bitrate
  /// adapter leaves, which SIC can harvest (Section 1's discussion).
  double rate_margin = 1.0;
  /// RTS/CTS before every data frame — the classical (pre-SIC) answer to
  /// hidden terminals, for head-to-head comparison with the SIC AP.
  bool use_rts_cts = false;
  /// Section 9 receiver imperfections, applied to the AP's SIC decoder.
  double cancellation_residual = 0.0;
  Decibels max_decodable_disparity{1e9};
  /// Mutual client-to-client RSS, as dB over the noise floor. Above the
  /// carrier-sense threshold = no hidden terminals (the default); below =
  /// everyone is hidden from everyone.
  Decibels client_mutual_snr{25.0};
  /// Injected faults (scheduled executor only). All-zero = inert.
  FaultConfig faults;
  /// Closed-loop recovery policy (scheduled executor only).
  RecoveryConfig recovery;
  std::uint64_t seed = 1;
  SimTime horizon = from_seconds(300.0);
};

/// Per-cause failure accounting of one scheduled-upload run. "Frame"
/// here means a client's backlogged packet; "attempt" one transmission of
/// it (so attempts - confirmations = failures of all causes).
struct FailureTelemetry {
  /// Decode failures with no injected cause: the planned rate missed the
  /// realized SINR (stale estimate, insufficient margin).
  std::uint64_t rate_misses = 0;
  /// Decode failures injected by the fault model's cancellation path.
  std::uint64_t cancellation_failures = 0;
  /// Frames the AP decoded whose ACK was lost — the sender retries and the
  /// AP sees a duplicate.
  std::uint64_t ack_losses = 0;
  /// Re-receptions of an already-delivered frame (from the AP's counters).
  std::uint64_t duplicate_deliveries = 0;
  /// Transmissions beyond each frame's first attempt.
  std::uint64_t retransmissions = 0;
  /// Retry slots that stepped down the degradation ladder
  /// (multirate -> SIC -> power control -> serial/solo).
  std::uint64_t mode_demotions = 0;
  /// Clients barred from pairing after demote_after_failures failures.
  std::uint64_t client_demotions = 0;
  /// Re-estimation + re-matching passes over the residual backlog.
  std::uint64_t rematch_rounds = 0;
  /// Frames confirmed after at least one failure.
  std::uint64_t recovered = 0;
  /// Frames abandoned (attempt/round budget exhausted or horizon hit).
  std::uint64_t unrecovered = 0;
  /// Terminal cause of each abandoned frame — what its *last* failed
  /// confirmation died of when the executor gave up. The per-attempt
  /// counters above mix recovered and fatal failures; these four split
  /// `unrecovered` by cause (they always sum to it), so "gave up because
  /// of X" is visible in metrics snapshots.
  std::uint64_t gave_up_rate_miss = 0;
  std::uint64_t gave_up_cancellation = 0;
  std::uint64_t gave_up_ack_loss = 0;
  /// Abandoned with no failed confirmation observed: the horizon cut the
  /// run before the frame's first check came back.
  std::uint64_t gave_up_unattempted = 0;
  /// retry_histogram[k] = frames confirmed after exactly k retries; the
  /// last bucket absorbs the tail.
  std::vector<std::uint64_t> retry_histogram;
};

struct UploadSimResult {
  double completion_s = 0.0;     ///< last ACKed delivery (or horizon)
  std::uint64_t offered = 0;     ///< frames enqueued
  /// Data frames decoded at the AP. This counts MAC-layer receptions: when
  /// an ACK defers past a station's retry timeout (e.g. the SIC AP holding
  /// its ACK while still receiving the weaker frame), the retransmission
  /// is received again, so delivered can exceed offered — exactly the
  /// ACK-vs-latency tension [4] reports for real SIC receivers.
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
  MediumStats medium;
  /// Failure/recovery accounting (scheduled executor; empty for DCF runs).
  FailureTelemetry failures;
  /// Abandoned frames per client, indexed like the clients span (scheduled
  /// executor only; empty for DCF runs). Sums to failures.unrecovered —
  /// the per-client attribution a fleet-level quarantine policy needs.
  std::vector<std::uint64_t> unrecovered_per_client;
};

[[nodiscard]] UploadSimResult run_dcf_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const UploadSimConfig& config);

/// Executes \p schedule (produced by core::schedule_upload on the same
/// clients/adapter/options) slot by slot. Multirate slots run as 802.11-
/// style fragment bursts: the stronger packet's overlap fragment rides the
/// collision at the interference-limited rate (no ACK), and its remainder
/// is boosted to the clean rate after the weaker packet's ACK turnaround.
/// \p clients are the *true* nominal channels; under config.faults the
/// executor's knowledge of them is degraded as described above.
[[nodiscard]] UploadSimResult run_scheduled_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const core::Schedule& schedule,
    const UploadSimConfig& config);

}  // namespace sic::mac

#endif  // SICMAC_MAC_UPLOAD_SIM_HPP
