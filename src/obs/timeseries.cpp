#include "obs/timeseries.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "obs/json_util.hpp"
#include "util/check.hpp"

namespace sic::obs {

namespace {

thread_local TimeSeriesRegistry* g_timeseries = nullptr;

}  // namespace

TimeSeries::TimeSeries(std::size_t capacity) {
  SIC_CHECK(capacity >= 1);
  ring_.resize(capacity);
}

void TimeSeries::record(std::uint64_t epoch, double value) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = Point{epoch, value};
    ++size_;
  } else {
    ring_[head_] = Point{epoch, value};
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

TimeSeries::Point TimeSeries::point(std::size_t i) const {
  SIC_CHECK(i < size_);
  return ring_[(head_ + i) % ring_.size()];
}

TimeSeriesRegistry::TimeSeriesRegistry(std::size_t default_capacity)
    : default_capacity_(default_capacity) {
  SIC_CHECK(default_capacity >= 1);
}

TimeSeries& TimeSeriesRegistry::series(std::string_view name) {
  return series(name, default_capacity_);
}

TimeSeries& TimeSeriesRegistry::series(std::string_view name,
                                       std::size_t capacity) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.emplace(std::string{name}, TimeSeries{capacity})
      .first->second;
}

std::string TimeSeriesRegistry::csv() const {
  std::ostringstream os;
  os << "epoch";
  for (const auto& [name, s] : series_) os << ',' << name;
  os << '\n';
  // Row set = union of retained epochs; cell = the series' last sample at
  // that epoch. std::map keeps the rows ascending and the columns
  // name-ordered, so the table is deterministic.
  std::map<std::uint64_t, std::map<std::string, double, std::less<>>> rows;
  for (const auto& [name, s] : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const TimeSeries::Point p = s.point(i);
      rows[p.epoch][name] = p.value;
    }
  }
  for (const auto& [epoch, cells] : rows) {
    os << epoch;
    for (const auto& [name, s] : series_) {
      os << ',';
      const auto cell = cells.find(name);
      if (cell != cells.end()) os << detail::format_double(cell->second);
    }
    os << '\n';
  }
  return os.str();
}

std::string TimeSeriesRegistry::jsonl() const {
  std::ostringstream os;
  for (const auto& [name, s] : series_) {
    os << "{\"series\":";
    detail::append_json_string(os, name);
    os << ",\"dropped\":" << s.dropped() << ",\"points\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      const TimeSeries::Point p = s.point(i);
      if (i != 0) os << ',';
      os << '[' << p.epoch << ',' << detail::format_double(p.value) << ']';
    }
    os << "]}\n";
  }
  return os.str();
}

std::string TimeSeriesRegistry::json_object() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, s] : series_) {
    if (!first) os << ',';
    first = false;
    detail::append_json_string(os, name);
    os << ":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      const TimeSeries::Point p = s.point(i);
      if (i != 0) os << ',';
      os << '[' << p.epoch << ',' << detail::format_double(p.value) << ']';
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

TimeSeriesRegistry* timeseries() { return g_timeseries; }

TimeSeriesRegistry* set_timeseries(TimeSeriesRegistry* registry) {
  TimeSeriesRegistry* previous = g_timeseries;
  g_timeseries = registry;
  return previous;
}

}  // namespace sic::obs
