#ifndef SICMAC_UTIL_RNG_HPP
#define SICMAC_UTIL_RNG_HPP

/// \file rng.hpp
/// Deterministic random number generation. Every stochastic component in the
/// library (topology generators, Monte Carlo engines, shadowing, the MAC
/// simulator's backoff) draws from an explicitly seeded Rng so that every
/// experiment is reproducible from its printed seed.

#include <cstdint>
#include <random>

namespace sic {

/// SplitMix64 — used to expand a single user seed into independent stream
/// seeds (one per component) without correlation artifacts.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Seeded pseudo-random source with the distributions the library needs.
/// Thin wrapper over std::mt19937_64; copyable so Monte Carlo workers can
/// fork substreams cheaply via `fork()`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(scramble(seed)) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>{lo, hi}(engine_);
  }

  /// Standard normal scaled to the given mean / standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Exponentially distributed value with the given rate parameter.
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>{rate}(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Derives an independent child generator; successive calls yield
  /// distinct streams.
  ///
  /// \warning The child seed is drawn from this engine, so which stream a
  /// fork yields depends on how many draws preceded it. That is fine for
  /// the sequential MAC simulator (a fixed fork order per run) but breaks
  /// reproducibility once work is scheduled out of order — parallel sweeps
  /// must use the counter-based at() instead.
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  /// Counter-based substream derivation: the generator for \p index under
  /// \p seed, independent of any other stream and of evaluation order.
  /// `at(seed, i)` always yields the same stream no matter how many draws
  /// happened elsewhere or which thread asks — the foundation of the
  /// deterministic parallel Monte Carlo engine (one substream per trial
  /// index; see analysis/parallel.hpp). Derivation is SplitMix64 over
  /// `seed ^ index`: for a fixed seed, distinct indices give distinct,
  /// well-scattered engine seeds.
  [[nodiscard]] static Rng at(std::uint64_t seed, std::uint64_t index) {
    return Rng{SplitMix64{seed ^ index}.next()};
  }

  /// Exposes the underlying engine for use with std:: algorithms
  /// (e.g. std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t scramble(std::uint64_t seed) {
    // Avoid the low-entropy-seed pathologies of mt19937_64 by passing the
    // user seed through SplitMix64 first.
    return SplitMix64{seed}.next();
  }

  std::mt19937_64 engine_;
};

}  // namespace sic

#endif  // SICMAC_UTIL_RNG_HPP
