#ifndef SICMAC_PHY_CAPACITY_REGION_HPP
#define SICMAC_PHY_CAPACITY_REGION_HPP

/// \file capacity_region.hpp
/// The two-user Gaussian multiple-access capacity region of [12] (Tse &
/// Viswanathan), the information-theoretic object behind Section 2. The
/// region is the pentagon
///
///   r1 ≤ B log2(1 + S1/N0)
///   r2 ≤ B log2(1 + S2/N0)
///   r1 + r2 ≤ B log2(1 + (S1+S2)/N0)
///
/// whose two corners are exactly the SIC decode orders: corner A decodes
/// user 1 first (user 2 interference-free, eqs (1)/(2) with roles swapped),
/// corner B decodes user 2 first. Points between the corners need rate
/// splitting / time sharing; points strictly inside are achievable without
/// SIC only up to the orthogonal (TDMA) boundary.

#include "phy/capacity.hpp"
#include "util/units.hpp"

namespace sic::phy {

/// A rate pair (user 1, user 2) in bits/s.
struct RatePair {
  BitsPerSecond r1;
  BitsPerSecond r2;
};

class CapacityRegion {
 public:
  /// \p s1 and \p s2 are the two users' RSS at the common receiver.
  CapacityRegion(Hertz bandwidth, Milliwatts s1, Milliwatts s2,
                 Milliwatts noise);

  /// Single-user constraints.
  [[nodiscard]] BitsPerSecond max_r1() const { return max_r1_; }
  [[nodiscard]] BitsPerSecond max_r2() const { return max_r2_; }
  /// Sum constraint — the paper's eq (4).
  [[nodiscard]] BitsPerSecond sum_capacity() const { return sum_; }

  /// Corner where user 1's signal is decoded *first* (and therefore
  /// suffers user 2 as interference): r1 = eq(1)-style rate, r2 = clean.
  [[nodiscard]] RatePair corner_user1_decoded_first() const;
  /// The other decode order.
  [[nodiscard]] RatePair corner_user2_decoded_first() const;

  /// Whether the rate pair lies in the region (within a relative epsilon).
  [[nodiscard]] bool contains(RatePair rates, double rel_tol = 1e-9) const;

  /// Whether the pair is achievable *without* SIC by pure time sharing of
  /// the two single-user links (the paper's -SIC baseline): the TDMA
  /// region r1/max_r1 + r2/max_r2 ≤ 1.
  [[nodiscard]] bool achievable_by_time_sharing(RatePair rates,
                                                double rel_tol = 1e-9) const;

  /// A point on the dominant (sum-rate) face, sliding from corner A (t=0)
  /// to corner B (t=1) by time sharing between the decode orders.
  [[nodiscard]] RatePair dominant_face_point(double t) const;

 private:
  Hertz bandwidth_;
  Milliwatts s1_;
  Milliwatts s2_;
  Milliwatts noise_;
  BitsPerSecond max_r1_;
  BitsPerSecond max_r2_;
  BitsPerSecond sum_;
};

}  // namespace sic::phy

#endif  // SICMAC_PHY_CAPACITY_REGION_HPP
