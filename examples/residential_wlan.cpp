/// Residential WLANs (Section 4.2, Fig. 7b): two WPA-locked apartments.
/// Client C2 sits at the shared wall — closer to the *neighbor's* AP than
/// to its own. The example shows the paper's asymmetry: AP1→C2 can run
/// concurrently with AP2→C4 (C2 cancels the neighbor's strong, slow-rate
/// interference) but NOT with AP2→C3 (the neighbor's rate to its nearby
/// client is too high for C2 to decode).

#include <cstdio>
#include <utility>

#include "core/cross_link.hpp"
#include "topology/scenarios.hpp"

int main() {
  using namespace sic;
  using topology::NodeRole;

  const auto home = topology::make_residential();
  const auto& ap1 = home.by_role(NodeRole::kAccessPoint, 0);
  const auto& ap2 = home.by_role(NodeRole::kAccessPoint, 1);
  const auto& c2 = home.by_role(NodeRole::kClient, 1);   // at the wall
  const auto& c3 = home.by_role(NodeRole::kClient, 2);   // near AP2
  const auto& c4 = home.by_role(NodeRole::kClient, 3);   // far end of apt 2

  const phy::ShannonRateAdapter adapter{megahertz(20.0)};

  const auto snr_db = [&](const topology::Node& from,
                          const topology::Node& to) {
    return Decibels::from_linear(home.rss(from, to) / home.noise()).value();
  };
  std::printf("link SNRs:\n");
  std::printf("  AP1 -> C2 (own, through the wall): %5.1f dB\n",
              snr_db(ap1, c2));
  std::printf("  AP2 -> C2 (neighbor, nearby):      %5.1f dB\n",
              snr_db(ap2, c2));
  std::printf("  AP2 -> C3 (neighbor's near link):  %5.1f dB\n",
              snr_db(ap2, c3));
  std::printf("  AP2 -> C4 (neighbor's far link):   %5.1f dB\n",
              snr_db(ap2, c4));

  // Build the two-link RSS matrices. Link 1 is always AP1→C2.
  const auto cross = [&](const topology::Node& other_client) {
    channel::TwoLinkRss rss;
    rss.s11 = home.rss(ap1, c2);
    rss.s12 = home.rss(ap2, c2);
    rss.s21 = home.rss(ap1, other_client);
    rss.s22 = home.rss(ap2, other_client);
    rss.noise = home.noise();
    return rss;
  };

  const std::pair<const char*, const topology::Node*> partners[] = {
      {"AP2->C4 (far)", &c4}, {"AP2->C3 (near)", &c3}};
  for (const auto& [label, client] : partners) {
    const auto result = core::evaluate_cross_link(cross(*client), adapter);
    std::printf("\nAP1->C2 concurrent with %s:\n", label);
    std::printf("  case: %s, SIC feasible at C2: %s\n",
                to_string(result.kase), result.sic_feasible ? "YES" : "no");
    if (result.sic_feasible) {
      std::printf("  serial %.0f us, concurrent %.0f us, one-shot gain %.2fx\n",
                  1e6 * result.serial_airtime, 1e6 * result.concurrent_airtime,
                  result.gain);
      // One packet each rarely pays off — the fast link idles while the
      // slow neighbor transmission drags on. Packet packing (Section 5.4)
      // fills that slack: AP1 streams several frames to C2 inside AP2's
      // long transmission.
      std::printf("  with packet packing: per-packet gain %.2fx\n",
                  core::cross_link_packing_gain(cross(*client), adapter));
    } else {
      std::printf("  serial %.0f us, concurrent infeasible, gain 1.00x\n",
                  1e6 * result.serial_airtime);
    }
  }

  std::printf("\npaper's conclusion: residential WLANs offer SIC "
              "opportunities only when the client's own AP is farther than "
              "the neighbor's AP and the neighbor is serving a *far* "
              "client (low rate C2 can decode).\n");
  return 0;
}
