/// The paper's Section 1 thesis as a measured, deterministic property:
/// coarser discrete rate ladders leave more quantization slack for SIC.

#include <gtest/gtest.h>

#include "analysis/montecarlo.hpp"
#include "analysis/stats.hpp"

namespace sic {
namespace {

double sic_fraction_above_20(const phy::RateAdapter& adapter) {
  topology::SamplerConfig config;
  const auto samples =
      analysis::run_two_to_one_techniques(config, adapter, 4000, 4242);
  return analysis::EmpiricalCdf{samples.sic}.fraction_above(1.2);
}

TEST(Granularity, CoarserLaddersLeaveMoreSicSlack) {
  const phy::DiscreteRateAdapter b{phy::RateTable::dot11b()};
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const phy::DiscreteRateAdapter n{phy::RateTable::dot11n()};
  const double frac_b = sic_fraction_above_20(b);
  const double frac_g = sic_fraction_above_20(g);
  const double frac_n = sic_fraction_above_20(n);
  // 4 rates > 8 rates > fine ladder, with real separation.
  EXPECT_GT(frac_b, frac_g * 1.5);
  EXPECT_GT(frac_g, frac_n * 1.2);
}

TEST(Granularity, MeanGainAlsoMonotone) {
  const phy::DiscreteRateAdapter b{phy::RateTable::dot11b()};
  const phy::DiscreteRateAdapter n{phy::RateTable::dot11n()};
  topology::SamplerConfig config;
  const auto sb = analysis::run_two_to_one_techniques(config, b, 4000, 7);
  const auto sn = analysis::run_two_to_one_techniques(config, n, 4000, 7);
  EXPECT_GT(analysis::summarize(sb.sic).mean,
            analysis::summarize(sn.sic).mean);
}

TEST(Granularity, PowerControlAmplifiesCoarseLadders) {
  // With few rungs, reducing the weaker client's power often bumps the
  // stronger client up a whole rung — power control is *more* valuable on
  // coarse ladders.
  const phy::DiscreteRateAdapter b{phy::RateTable::dot11b()};
  const phy::DiscreteRateAdapter n{phy::RateTable::dot11n()};
  topology::SamplerConfig config;
  const auto sb = analysis::run_two_to_one_techniques(config, b, 2000, 11);
  const auto sn = analysis::run_two_to_one_techniques(config, n, 2000, 11);
  const double lift_b =
      analysis::EmpiricalCdf{sb.power_control}.fraction_above(1.2);
  const double lift_n =
      analysis::EmpiricalCdf{sn.power_control}.fraction_above(1.2);
  EXPECT_GT(lift_b, lift_n);
}

}  // namespace
}  // namespace sic
