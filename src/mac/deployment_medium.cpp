#include "mac/deployment_medium.hpp"

#include "util/check.hpp"

namespace sic::mac {

std::unique_ptr<Medium> make_medium_from_deployment(
    EventQueue& queue, const topology::Deployment& deployment,
    const phy::RateAdapter& adapter, phy::SicDecoderConfig decoder) {
  const int n = static_cast<int>(deployment.nodes.size());
  SIC_CHECK_MSG(n >= 1, "deployment has no nodes");
  for (int i = 0; i < n; ++i) {
    SIC_CHECK_MSG(deployment.nodes[static_cast<std::size_t>(i)].id ==
                      static_cast<topology::NodeId>(i),
                  "deployment node ids must be 0..n-1");
  }
  auto medium = std::make_unique<Medium>(queue, n, deployment.noise(),
                                         adapter, decoder);
  for (int tx = 0; tx < n; ++tx) {
    for (int rx = 0; rx < n; ++rx) {
      if (tx == rx) continue;
      medium->set_directional_gain(
          tx, rx,
          deployment.rss(deployment.nodes[static_cast<std::size_t>(tx)],
                         deployment.nodes[static_cast<std::size_t>(rx)]));
    }
  }
  return medium;
}

}  // namespace sic::mac
