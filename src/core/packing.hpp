#ifndef SICMAC_CORE_PACKING_HPP
#define SICMAC_CORE_PACKING_HPP

/// \file packing.hpp
/// Section 5.4: packet packing. When one transmission's airtime is much
/// longer than its partner's, the faster transmitter fills the slack by
/// sending additional packets back-to-back inside the long packet's
/// airtime (Fig. 10g). We model the realizable variant — the fast side
/// sends an integer train of equal-size packets, each requiring SIC-decode
/// feasibility — plus the fluid upper bound (perfect slack filling), which
/// equals the sum-rate point of the SIC capacity region.
///
/// The gain metric is throughput-normalized: time-per-packet with packing
/// versus time-per-packet of the serial baseline delivering the same
/// packet mix at clean rates. For a train of k fast packets over one slow
/// packet:
///   packed:  (k + 1) packets in max(t_slow, k·t_fast)
///   serial:  k·L/r_fast_clean + L/r_slow_clean

#include "core/upload_pair.hpp"

namespace sic::core {

struct PackingResult {
  int fast_packets = 1;      ///< train length on the faster link
  double span = 0.0;         ///< wall-clock time of the packed exchange
  double time_per_packet = 0.0;
  double serial_time_per_packet = 0.0;
  /// serial_time_per_packet / time_per_packet; ≥ 1 by fallback to k = 1.
  double gain = 1.0;
};

/// Packet packing for the two-transmitters/one-receiver pair. The faster
/// of the two SIC-constrained transmissions packs ⌊t_slow/t_fast⌋ packets
/// (at least 1). Falls back to the plain SIC exchange when packing does
/// not help.
[[nodiscard]] PackingResult packing_two_to_one(const UploadPairContext& ctx);

/// Fluid (infinitely divisible traffic) packing gain for a *1:1 packet
/// mix*: both links stream continuously at the SIC rate pair, so
/// throughput is r₁+r₂; the serial baseline time-shares the clean rates.
/// With the Shannon policy r₁+r₂ = C₊SIC, making this exactly the
/// capacity-gain ceiling of Section 2.3. Note the discrete train serves a
/// k:1 mix, so its (differently normalized) gain may exceed this value —
/// the two are different workloads, not bound and boundee.
[[nodiscard]] double packing_fluid_gain(const UploadPairContext& ctx);

}  // namespace sic::core

#endif  // SICMAC_CORE_PACKING_HPP
