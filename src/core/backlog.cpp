#include "core/backlog.hpp"

#include <algorithm>
#include <cmath>

#include "core/matching_tier.hpp"
#include "core/upload_pair.hpp"
#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::core {

double solo_drain_airtime(const BacklogClient& client,
                          const phy::RateAdapter& adapter,
                          double packet_bits) {
  SIC_CHECK(client.packets >= 0);
  return client.packets * solo_airtime(client.link, adapter, packet_bits);
}

DrainPlan best_drain_plan(const BacklogClient& a, const BacklogClient& b,
                          const phy::RateAdapter& adapter,
                          const BacklogOptions& options) {
  SIC_CHECK_MSG(a.link.noise == b.link.noise,
                "drain plan assumes a common receiver noise floor");
  SIC_CHECK(a.packets >= 0 && b.packets >= 0);
  const double bits = options.packet_bits;
  const double ta = solo_airtime(a.link, adapter, bits);
  const double tb = solo_airtime(b.link, adapter, bits);

  DrainPlan best;
  best.mode = DrainMode::kSerial;
  best.airtime = a.packets * ta + b.packets * tb;

  const auto ctx =
      UploadPairContext::make(a.link.rss, b.link.rss, a.link.noise, adapter,
                              bits);
  const auto rates = sic_rates(ctx);
  const double z_plus = sic_airtime(ctx);
  if (!std::isfinite(z_plus)) return best;

  // Per-packet concurrent times by client role.
  const bool a_is_stronger = a.link.rss >= b.link.rss;
  const double t_sic_a = airtime_seconds(
      bits, a_is_stronger ? rates.stronger : rates.weaker);
  const double t_sic_b = airtime_seconds(
      bits, a_is_stronger ? rates.weaker : rates.stronger);

  // Discipline 2: lockstep SIC rounds, leftovers serial.
  {
    const int m = std::min(a.packets, b.packets);
    const double time = m * z_plus + (a.packets - m) * ta +
                        (b.packets - m) * tb;
    if (time < best.airtime) {
      best = DrainPlan{DrainMode::kSicRounds, time, m};
    }
  }

  // Discipline 3: packed trains — the faster concurrent link stuffs
  // multiple packets under each slower packet.
  if (options.enable_packing) {
    const bool a_is_fast = t_sic_a <= t_sic_b;
    const double t_fast = a_is_fast ? t_sic_a : t_sic_b;
    const double t_slow = a_is_fast ? t_sic_b : t_sic_a;
    const double t_fast_clean = a_is_fast ? ta : tb;
    const double t_slow_clean = a_is_fast ? tb : ta;
    int q_fast = a_is_fast ? a.packets : b.packets;
    int q_slow = a_is_fast ? b.packets : a.packets;
    double time = 0.0;
    int trains = 0;
    while (q_slow > 0 && q_fast > 0) {
      const int k = std::clamp(
          static_cast<int>(std::floor(t_slow / t_fast)), 1, q_fast);
      time += std::max(t_slow, k * t_fast);
      q_slow -= 1;
      q_fast -= k;
      ++trains;
    }
    time += q_slow * t_slow_clean + q_fast * t_fast_clean;
    if (time < best.airtime) {
      best = DrainPlan{DrainMode::kPackedTrains, time, trains};
    }
  }
  return best;
}

double serial_backlog_airtime(std::span<const BacklogClient> clients,
                              const phy::RateAdapter& adapter,
                              double packet_bits) {
  double total = 0.0;
  for (const auto& c : clients) {
    total += solo_drain_airtime(c, adapter, packet_bits);
  }
  return total;
}

BacklogSchedule schedule_backlog_upload(std::span<const BacklogClient> clients,
                                        const phy::RateAdapter& adapter,
                                        const BacklogOptions& options) {
  BacklogSchedule schedule;
  const int n = static_cast<int>(clients.size());
  if (n == 0) return schedule;
  if (n == 1) {
    const double t =
        solo_drain_airtime(clients[0], adapter, options.packet_bits);
    schedule.slots.push_back(
        BacklogSlot{0, -1, DrainPlan{DrainMode::kSerial, t, 0}});
    schedule.total_airtime = t;
    return schedule;
  }

  const bool odd = (n % 2) != 0;
  const int m = odd ? n + 1 : n;
  const int dummy = odd ? n : -1;
  std::vector<DrainPlan> plans(static_cast<std::size_t>(m) * m);
  // Per-vertex solo drain times double as the approximate tier's
  // sparsification baseline (0 for the dummy: its edges always drop and
  // the fallback closes them).
  std::vector<double> solo(static_cast<std::size_t>(m), 0.0);
  matching::CostMatrix costs{m};
  for (int i = 0; i < n; ++i) {
    solo[static_cast<std::size_t>(i)] =
        solo_drain_airtime(clients[i], adapter, options.packet_bits);
    for (int j = i + 1; j < n; ++j) {
      const DrainPlan plan =
          best_drain_plan(clients[i], clients[j], adapter, options);
      costs.set(i, j, plan.airtime);
      plans[static_cast<std::size_t>(i) * m + j] = plan;
    }
    if (odd) {
      costs.set(i, dummy, solo[static_cast<std::size_t>(i)]);
      plans[static_cast<std::size_t>(i) * m + dummy] =
          DrainPlan{DrainMode::kSerial, solo[static_cast<std::size_t>(i)], 0};
    }
  }

  std::vector<matching::WeightedEdge> edge_scratch;
  const matching::Matching matching = run_matching_tier(
      costs,
      resolve_matching_tier(options.pairing, n, options.auto_tier_threshold),
      solo, Decibels{0.0}, edge_scratch);

  for (const auto& [u, v] : matching.pairs) {
    const int i = std::min(u, v);
    const int j = std::max(u, v);
    BacklogSlot slot;
    slot.first = i;
    slot.second = (j == dummy) ? -1 : j;
    slot.plan = plans[static_cast<std::size_t>(i) * m + j];
    schedule.slots.push_back(slot);
    schedule.total_airtime += slot.plan.airtime;
  }
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const BacklogSlot& x, const BacklogSlot& y) {
              // Bit-exact tie detection keeps the sort stable across
              // platforms; airtimes are computed identically on all paths.
              if (!bitwise_equal(x.plan.airtime, y.plan.airtime)) {
                return x.plan.airtime > y.plan.airtime;
              }
              return x.first < y.first;
            });
  return schedule;
}

}  // namespace sic::core
