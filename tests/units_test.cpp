#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace sic {
namespace {

TEST(Units, DecibelLinearRoundTrip) {
  for (const double db : {-30.0, -10.0, 0.0, 3.0103, 10.0, 40.0}) {
    const Decibels d{db};
    EXPECT_NEAR(Decibels::from_linear(d.linear()).value(), db, 1e-9);
  }
}

TEST(Units, DecibelArithmetic) {
  const Decibels a{10.0};
  const Decibels b{3.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 13.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.0);
  EXPECT_DOUBLE_EQ((-a).value(), -10.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
}

TEST(Units, TenDbIsFactorTen) {
  EXPECT_NEAR(Decibels{10.0}.linear(), 10.0, 1e-12);
  EXPECT_NEAR(Decibels{20.0}.linear(), 100.0, 1e-10);
  EXPECT_NEAR(Decibels{-10.0}.linear(), 0.1, 1e-12);
}

TEST(Units, DbmMilliwattsRoundTrip) {
  const Dbm p{-94.0};
  const Milliwatts mw = p.to_milliwatts();
  EXPECT_NEAR(Dbm::from_milliwatts(mw).value(), -94.0, 1e-9);
  EXPECT_NEAR(Dbm{0.0}.to_milliwatts().value(), 1.0, 1e-12);
  EXPECT_NEAR(Dbm{30.0}.to_milliwatts().value(), 1000.0, 1e-9);
}

TEST(Units, DbmPlusGainIsAbsolute) {
  const Dbm p{-60.0};
  EXPECT_DOUBLE_EQ((p + Decibels{15.0}).value(), -45.0);
  EXPECT_DOUBLE_EQ((p - Decibels{15.0}).value(), -75.0);
  EXPECT_DOUBLE_EQ((Dbm{-40.0} - Dbm{-70.0}).value(), 30.0);
}

TEST(Units, MilliwattArithmetic) {
  const Milliwatts a{4.0};
  const Milliwatts b{1.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 5.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 3.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_DOUBLE_EQ((a * 0.5).value(), 2.0);
}

TEST(Units, BandwidthAndRateHelpers) {
  EXPECT_DOUBLE_EQ(megahertz(20.0).value(), 20e6);
  EXPECT_DOUBLE_EQ(megabits_per_second(54.0).value(), 54e6);
  EXPECT_DOUBLE_EQ(megabits_per_second(54.0).megabits(), 54.0);
}

TEST(Units, AirtimeBasics) {
  EXPECT_DOUBLE_EQ(airtime_seconds(12e6, megabits_per_second(12.0)), 1.0);
  EXPECT_DOUBLE_EQ(airtime_seconds(6e6, megabits_per_second(12.0)), 0.5);
}

TEST(Units, AirtimeAtZeroRateIsInfinite) {
  EXPECT_TRUE(std::isinf(airtime_seconds(1000.0, BitsPerSecond{0.0})));
  // Zero payload over a dead link is still infeasible, not instantaneous:
  // the rate check dominates, so the branch never wins a min().
  EXPECT_TRUE(std::isinf(airtime_seconds(0.0, BitsPerSecond{0.0})));
  EXPECT_TRUE(std::isinf(airtime_seconds(1000.0, BitsPerSecond{-1.0})));
}

TEST(Units, AirtimeAtZeroBitsIsZero) {
  EXPECT_DOUBLE_EQ(airtime_seconds(0.0, megabits_per_second(54.0)), 0.0);
}

TEST(Units, FromLinearGuardsNonPositiveInput) {
  // Documented contract: non-positive ratios are -inf, never NaN.
  EXPECT_TRUE(std::isinf(Decibels::from_linear(0.0).value()));
  EXPECT_LT(Decibels::from_linear(0.0).value(), 0.0);
  EXPECT_TRUE(std::isinf(Decibels::from_linear(-3.0).value()));
  EXPECT_LT(Decibels::from_linear(-3.0).value(), 0.0);
  // -inf stays well ordered against every finite dB value.
  EXPECT_LT(Decibels::from_linear(0.0), Decibels{-1000.0});
}

TEST(Units, FromMilliwattsGuardsNonPositiveInput) {
  EXPECT_TRUE(std::isinf(Dbm::from_milliwatts(Milliwatts{0.0}).value()));
  EXPECT_LT(Dbm::from_milliwatts(Milliwatts{0.0}).value(), 0.0);
  EXPECT_TRUE(std::isinf(Dbm::from_milliwatts(Milliwatts{-1.0}).value()));
  EXPECT_LT(Dbm::from_milliwatts(Milliwatts{-1.0}), Dbm{-300.0});
}

TEST(Units, CommutedScalarProducts) {
  EXPECT_DOUBLE_EQ((2.0 * Decibels{10.0}).value(), 20.0);
  EXPECT_DOUBLE_EQ((0.5 * Milliwatts{4.0}).value(), 2.0);
  // Both orders agree bit-for-bit.
  EXPECT_EQ((3.5 * Decibels{7.0}).value(), (Decibels{7.0} * 3.5).value());
  EXPECT_EQ((3.5 * Milliwatts{7.0}).value(), (Milliwatts{7.0} * 3.5).value());
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << Decibels{3.5} << ' ' << Dbm{-94.0} << ' ' << Milliwatts{2.0} << ' '
     << megabits_per_second(54.0);
  EXPECT_EQ(os.str(), "3.5 dB -94 dBm 2 mW 54 Mbps");
}

TEST(Units, StreamOutputEdgeValues) {
  std::ostringstream os;
  os << Decibels{0.0} << '|' << Decibels::from_linear(0.0) << '|'
     << Dbm::from_milliwatts(Milliwatts{0.0}) << '|' << Milliwatts{0.0} << '|'
     << BitsPerSecond{0.0};
  EXPECT_EQ(os.str(), "0 dB|-inf dB|-inf dBm|0 mW|0 Mbps");
}

TEST(Units, Comparisons) {
  EXPECT_LT(Decibels{3.0}, Decibels{4.0});
  EXPECT_GT(Milliwatts{2.0}, Milliwatts{1.0});
  EXPECT_LE(Dbm{-90.0}, Dbm{-90.0});
  EXPECT_LT(BitsPerSecond{1e6}, BitsPerSecond{2e6});
}

}  // namespace
}  // namespace sic
