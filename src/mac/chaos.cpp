#include "mac/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace sic::mac {

namespace {

void require_prob(double value, const char* name) {
  if (std::isnan(value)) {
    throw FaultConfigError(std::string(name) + " is NaN");
  }
  if (value < 0.0 || value > 1.0) {
    throw FaultConfigError(std::string(name) + " must be in [0,1], got " +
                           std::to_string(value));
  }
}

void require_nonnegative(double value, const char* name) {
  if (std::isnan(value)) {
    throw FaultConfigError(std::string(name) + " is NaN");
  }
  if (value < 0.0) {
    throw FaultConfigError(std::string(name) + " must be >= 0, got " +
                           std::to_string(value));
  }
}

void require_duration(int value, const char* name) {
  if (value < 1) {
    throw FaultConfigError(std::string(name) + " must be >= 1 epoch, got " +
                           std::to_string(value));
  }
}

}  // namespace

void ChaosProfile::validate() const {
  require_prob(ap_outage_prob, "ap_outage_prob");
  require_prob(burst_prob, "burst_prob");
  require_prob(departure_prob, "departure_prob");
  require_prob(storm_prob, "storm_prob");
  require_nonnegative(arrival_rate, "arrival_rate");
  require_nonnegative(storm_multiplier, "storm_multiplier");
  require_nonnegative(burst_depth.value(), "burst_depth");
  require_duration(outage_epochs, "outage_epochs");
  require_duration(burst_epochs, "burst_epochs");
  require_duration(storm_epochs, "storm_epochs");
}

FaultSchedule::FaultSchedule(const ChaosProfile& profile) : profile_(profile) {
  profile.validate();
}

FaultSchedule& FaultSchedule::add(const TimedChaosEvent& event) {
  if (event.epoch < 0) {
    throw FaultConfigError("timed event epoch must be >= 0");
  }
  if (event.kind != ChaosEventKind::kStorm &&
      event.kind != ChaosEventKind::kArrivals && event.ap < -1) {
    throw FaultConfigError("timed event AP must be an id or -1 (all)");
  }
  events_.push_back(event);
  return *this;
}

EpochChaos FaultSchedule::resolve(int epoch,
                                  std::span<const std::uint8_t> ap_alive,
                                  std::span<const int> clients,
                                  double churn_multiplier, Rng& rng) const {
  EpochChaos out;
  const int n_aps = static_cast<int>(ap_alive.size());
  // Scripted events first — they happen regardless of any draw.
  for (const TimedChaosEvent& ev : events_) {
    if (ev.epoch != epoch) continue;
    const int lo = ev.ap < 0 ? 0 : ev.ap;
    const int hi = ev.ap < 0 ? n_aps - 1 : ev.ap;
    switch (ev.kind) {
      case ChaosEventKind::kApOutage:
        for (int ap = lo; ap <= hi && ap < n_aps; ++ap) {
          out.outages.push_back({ap, ev.duration_epochs});
        }
        break;
      case ChaosEventKind::kApRestart:
        for (int ap = lo; ap <= hi && ap < n_aps; ++ap) {
          out.outages.push_back({ap, 0});  // duration 0 = back up now
        }
        break;
      case ChaosEventKind::kBurst:
        for (int ap = lo; ap <= hi && ap < n_aps; ++ap) {
          out.bursts.push_back({ap, ev.depth, ev.duration_epochs});
        }
        break;
      case ChaosEventKind::kStorm:
        out.storm_epochs = std::max(out.storm_epochs, ev.duration_epochs);
        break;
      case ChaosEventKind::kArrivals:
        out.arrivals += ev.count;
        break;
    }
  }
  // Stochastic draws in a fixed order: outage trials by AP id, burst
  // trials by AP id, departure trials by client position, then arrivals
  // and the storm trial. Zero-rate knobs skip their draws entirely.
  if (profile_.ap_outage_prob > 0.0) {
    for (int ap = 0; ap < n_aps; ++ap) {
      if (ap_alive[static_cast<std::size_t>(ap)] == 0) continue;
      if (rng.chance(profile_.ap_outage_prob)) {
        out.outages.push_back({ap, profile_.outage_epochs});
      }
    }
  }
  if (profile_.burst_prob > 0.0) {
    for (int ap = 0; ap < n_aps; ++ap) {
      if (ap_alive[static_cast<std::size_t>(ap)] == 0) continue;
      if (rng.chance(profile_.burst_prob)) {
        out.bursts.push_back({ap, profile_.burst_depth, profile_.burst_epochs});
      }
    }
  }
  const double depart =
      std::min(1.0, profile_.departure_prob * churn_multiplier);
  if (depart > 0.0) {
    for (const int client : clients) {
      if (rng.chance(depart)) out.departures.push_back(client);
    }
  }
  const double arrive = profile_.arrival_rate * churn_multiplier;
  if (arrive > 0.0) {
    out.arrivals += static_cast<int>(std::floor(arrive));
    const double frac = arrive - std::floor(arrive);
    if (frac > 0.0 && rng.chance(frac)) ++out.arrivals;
  }
  if (profile_.storm_prob > 0.0 && rng.chance(profile_.storm_prob)) {
    out.storm_epochs = std::max(out.storm_epochs, profile_.storm_epochs);
  }
  return out;
}

FaultSchedule FaultSchedule::preset(std::string_view name,
                                    int expected_clients) {
  const double n = static_cast<double>(expected_clients);
  ChaosProfile p;
  if (name == "none") {
    return FaultSchedule{};
  }
  if (name == "default") {
    // The ISSUE's acceptance profile: 1% AP outage/epoch, 2% churn,
    // occasional 20 dB bursts.
    p.ap_outage_prob = 0.01;
    p.outage_epochs = 3;
    p.burst_prob = 0.05;
    p.burst_depth = Decibels{20.0};
    p.burst_epochs = 2;
    p.departure_prob = 0.02;
    p.arrival_rate = 0.02 * n;
    return FaultSchedule{p};
  }
  if (name == "outage") {
    p.ap_outage_prob = 0.05;
    p.outage_epochs = 5;
    p.departure_prob = 0.01;
    p.arrival_rate = 0.01 * n;
    return FaultSchedule{p};
  }
  if (name == "burst") {
    p.burst_prob = 0.20;
    p.burst_depth = Decibels{25.0};
    p.burst_epochs = 3;
    return FaultSchedule{p};
  }
  if (name == "churn") {
    p.departure_prob = 0.05;
    p.arrival_rate = 0.05 * n;
    p.storm_prob = 0.10;
    p.storm_multiplier = 8.0;
    p.storm_epochs = 2;
    return FaultSchedule{p};
  }
  throw FaultConfigError("unknown chaos profile: " + std::string(name) +
                         " (expected none|default|outage|burst|churn)");
}

}  // namespace sic::mac
