#ifndef SICMAC_CORE_DOWNLOAD_HPP
#define SICMAC_CORE_DOWNLOAD_HPP

/// \file download.hpp
/// Section 4.1, download traffic: two APs deliver one packet each to a
/// single client over a wired backbone. With SIC the two APs transmit
/// concurrently — identical algebra to the upload pair, eq (6). Without
/// SIC, the backbone allows routing *both* packets through the stronger
/// AP, eq (10):
///
///   Z₋SIC = 2L / max(r(S¹/N₀), r(S²/N₀))
///
/// which is why Fig. 8 shows "very little benefit from SIC" here: the
/// no-SIC baseline is stronger than in the upload case.

#include "core/upload_pair.hpp"

namespace sic::core {

struct DownloadResult {
  double serial_airtime = 0.0;      ///< eq (10): both packets via best AP
  double concurrent_airtime = 0.0;  ///< eq (6)
  double gain = 1.0;                ///< realized gain, ≥ 1
  double raw_gain = 0.0;            ///< (10)/(6) unclamped, Fig. 8's value
};

/// Evaluates the two-APs/one-client download building block. The context's
/// arrival holds the two AP RSSs at the client.
[[nodiscard]] DownloadResult evaluate_download(const UploadPairContext& ctx);

}  // namespace sic::core

#endif  // SICMAC_CORE_DOWNLOAD_HPP
