/// Ablation — rate-set granularity (the paper's Section 1 thesis): "this
/// slack is fast disappearing with more finegrain bitrates (4 in 802.11b
/// vs 8 in 802.11g vs 32 in 802.11n) and the recent advances in bitrate
/// adaptation." Runs the Fig. 11a upload Monte Carlo under each rate
/// policy, from the coarsest discrete ladder to ideal Shannon adaptation,
/// and reports how much of the SIC opportunity each one leaves.

#include <cstdio>

#include "analysis/montecarlo.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sic;
  bench::header("Ablation — bitrate granularity squeezes SIC",
                "coarser rate ladders leave more slack for SIC to harvest; "
                "ideal adaptation leaves the least");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  const phy::DiscreteRateAdapter b{phy::RateTable::dot11b()};
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const phy::DiscreteRateAdapter n{phy::RateTable::dot11n()};

  topology::SamplerConfig config;
  constexpr int kTrials = 8000;
  constexpr std::uint64_t kSeed = 4242;

  struct Entry {
    const char* name;
    const phy::RateAdapter* adapter;
    std::size_t ladder;
  };
  const Entry entries[] = {
      {"802.11b (4 rates)", &b, phy::RateTable::dot11b().entries().size()},
      {"802.11g (8 rates)", &g, phy::RateTable::dot11g().entries().size()},
      {"802.11n (fine)", &n, phy::RateTable::dot11n().entries().size()},
      {"Shannon (ideal)", &shannon, 0},
  };

  std::printf("%-20s %-8s %-14s %-14s %-14s\n", "rate policy", "ladder",
              "SIC >20%", "mean gain", "+power >20%");
  for (const auto& entry : entries) {
    const auto samples = analysis::run_two_to_one_techniques(
        config, *entry.adapter, kTrials, kSeed);
    const analysis::EmpiricalCdf sic{samples.sic};
    const analysis::EmpiricalCdf pc{samples.power_control};
    const auto summary = analysis::summarize(samples.sic);
    std::printf("%-20s %-8zu %-14.3f %-14.4f %-14.3f\n", entry.name,
                entry.ladder, sic.fraction_above(1.2), summary.mean,
                pc.fraction_above(1.2));
  }

  std::printf("\n(Reading: across the discrete ladders the SIC-alone "
              "fraction falls monotonically — 802.11b leaves roughly 4x the "
              "slack 802.11n does, the paper's '4 vs 8 vs 32' argument. The "
              "Shannon row is not on that axis: its gains come from the "
              "pure eq(5)/eq(6) ratio rather than quantization slack, and "
              "land near the 802.11g level.)\n");
  return 0;
}
