#ifndef SICMAC_BENCH_BENCH_UTIL_HPP
#define SICMAC_BENCH_BENCH_UTIL_HPP

/// \file bench_util.hpp
/// Shared output helpers for the figure-reproduction binaries. Every
/// figure binary prints: a header naming the paper artifact, the series
/// the paper reports (as aligned text tables the EXPERIMENTS.md rows are
/// copied from), and the deterministic seed it ran with.

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/stats.hpp"
#include "obs/build_info.hpp"
#include "util/cli_args.hpp"

namespace sic::bench {

/// Parses `--csv <prefix>` from argv: when present, figure benches also
/// write machine-readable CSVs as <prefix><series>.csv for plotting.
inline std::optional<std::string> csv_prefix(int argc, char** argv) {
  return ArgParser{argc, argv}.get("csv");
}

/// Parses the global `--threads` flag (0 = all hardware threads, default 1)
/// shared with the sicmac CLI. Figure output is bit-identical for any
/// value; the flag only changes wall-clock time.
inline int threads(int argc, char** argv) {
  return ArgParser{argc, argv}.get_threads();
}

inline void write_text_file(const std::string& path,
                            const std::string& content) {
  errno = 0;
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error("cannot open for write: " + path + ": " +
                             std::strerror(errno));
  }
  os << content;
  std::printf("wrote %s\n", path.c_str());
}

/// Wall clock for the run manifest; construct at the top of main().
class RunTimer {
 public:
  RunTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Reproducibility manifest stamped as comment lines at the top of every
/// CSV a figure bench writes: the seed and build that produced the file,
/// how long the run took, and (when a sample count is given) its rate.
inline std::string manifest(std::uint64_t seed, const RunTimer& timer,
                            std::uint64_t samples = 0) {
  const double elapsed_s = timer.elapsed_s();
  std::ostringstream os;
  os << "# sicmac " << obs::git_describe() << " seed=" << seed;
  char buf[64];
  std::snprintf(buf, sizeof buf, " elapsed_s=%.3f", elapsed_s);
  os << buf;
  if (samples > 0 && elapsed_s > 0.0) {
    std::snprintf(buf, sizeof buf, " samples_per_sec=%.0f",
                  static_cast<double>(samples) / elapsed_s);
    os << buf;
  }
  os << '\n';
  return os.str();
}

/// Full empirical CDF as "value,cumulative_probability" rows.
inline std::string cdf_csv(const analysis::EmpiricalCdf& cdf) {
  std::ostringstream os;
  os << "value,cumulative_probability\n";
  const auto samples = cdf.sorted_samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << samples[i] << ','
       << static_cast<double>(i + 1) / static_cast<double>(samples.size())
       << '\n';
  }
  return os.str();
}

inline void header(const std::string& figure, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints an (x, F(x)) CDF as the paper's figures plot them.
inline void print_cdf(const std::string& label,
                      const analysis::EmpiricalCdf& cdf, int points = 13) {
  std::printf("%-28s", (label + " CDF:").c_str());
  for (const auto& p : cdf.curve(points)) {
    std::printf(" (%.2f,%.2f)", p.x, p.f);
  }
  std::printf("\n");
}

/// Prints the headline fractions the paper quotes ("X%% of cases gain over
/// 20%%").
inline void print_fractions(const std::string& label,
                            const analysis::EmpiricalCdf& cdf) {
  std::printf("%-22s  no-gain %.1f%%  >5%% %.1f%%  >20%% %.1f%%  >50%% %.1f%%  median %.3f\n",
              label.c_str(), 100.0 * cdf.at(1.0 + 1e-9),
              100.0 * cdf.fraction_above(1.05),
              100.0 * cdf.fraction_above(1.2),
              100.0 * cdf.fraction_above(1.5), cdf.quantile(0.5));
}

}  // namespace sic::bench

#endif  // SICMAC_BENCH_BENCH_UTIL_HPP
