#include "matching/blossom.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "matching/error.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace sic::matching {

namespace {

/// The primal-dual weighted blossom matcher. One instance solves one
/// problem; all state lives in flat arrays indexed by vertex (0..n-1) or
/// blossom id (0..2n-1; ids >= n are non-trivial blossoms).
class BlossomMatcher {
 public:
  struct Edge {
    int i;
    int j;
    std::int64_t w;
  };

  /// Work counters accumulated as plain integers on the hot path and
  /// published in one batch by max_weight_matching (obs batch idiom).
  struct SolveStats {
    std::uint64_t stages = 0;
    std::uint64_t augmentations = 0;
    std::uint64_t edge_visits = 0;
    std::uint64_t blossoms_formed = 0;
  };

  BlossomMatcher(int nvertex, std::vector<Edge> edges, bool max_cardinality)
      : nv_(nvertex), edges_(std::move(edges)), maxcard_(max_cardinality) {
    const int ne = static_cast<int>(edges_.size());
    maxweight_ = 0;
    for (const auto& e : edges_) {
      SIC_CHECK(e.i >= 0 && e.i < nv_ && e.j >= 0 && e.j < nv_ && e.i != e.j);
      maxweight_ = std::max(maxweight_, e.w);
    }
    endpoint_.resize(2 * ne);
    for (int k = 0; k < ne; ++k) {
      endpoint_[2 * k] = edges_[k].i;
      endpoint_[2 * k + 1] = edges_[k].j;
    }
    neighbend_.resize(nv_);
    for (int k = 0; k < ne; ++k) {
      neighbend_[edges_[k].i].push_back(2 * k + 1);
      neighbend_[edges_[k].j].push_back(2 * k);
    }
    mate_.assign(nv_, -1);
    label_.assign(2 * nv_, 0);
    labelend_.assign(2 * nv_, -1);
    inblossom_.resize(nv_);
    for (int v = 0; v < nv_; ++v) inblossom_[v] = v;
    blossomparent_.assign(2 * nv_, -1);
    blossombase_.resize(2 * nv_);
    for (int v = 0; v < nv_; ++v) blossombase_[v] = v;
    for (int b = nv_; b < 2 * nv_; ++b) blossombase_[b] = -1;
    blossomchilds_.resize(2 * nv_);
    blossomendps_.resize(2 * nv_);
    bestedge_.assign(2 * nv_, -1);
    blossombestedges_.resize(2 * nv_);
    has_bestedges_.assign(2 * nv_, false);
    for (int b = 2 * nv_ - 1; b >= nv_; --b) unusedblossoms_.push_back(b);
    dualvar_.assign(2 * nv_, 0);
    for (int v = 0; v < nv_; ++v) dualvar_[v] = maxweight_;
    allowedge_.assign(ne, false);
  }

  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  std::vector<int> solve() {
    if (nv_ == 0) return {};
    for (int stage = 0; stage < nv_; ++stage) {
      ++stats_.stages;
      std::fill(label_.begin(), label_.end(), 0);
      std::fill(bestedge_.begin(), bestedge_.end(), -1);
      for (int b = nv_; b < 2 * nv_; ++b) {
        blossombestedges_[b].clear();
        has_bestedges_[b] = false;
      }
      std::fill(allowedge_.begin(), allowedge_.end(), false);
      queue_.clear();
      for (int v = 0; v < nv_; ++v) {
        if (mate_[v] == -1 && label_[inblossom_[v]] == 0) {
          assign_label(v, 1, -1);
        }
      }
      bool augmented = false;
      for (;;) {
        while (!queue_.empty() && !augmented) {
          const int v = queue_.back();
          queue_.pop_back();
          SIC_DCHECK(label_[inblossom_[v]] == 1);
          for (const int p : neighbend_[v]) {
            ++stats_.edge_visits;
            const int k = p / 2;
            const int w = endpoint_[p];
            if (inblossom_[v] == inblossom_[w]) continue;
            std::int64_t kslack = 0;
            if (!allowedge_[k]) {
              kslack = slack(k);
              if (kslack <= 0) allowedge_[k] = true;
            }
            if (allowedge_[k]) {
              if (label_[inblossom_[w]] == 0) {
                assign_label(w, 2, p ^ 1);
              } else if (label_[inblossom_[w]] == 1) {
                const int base = scan_blossom(v, w);
                if (base >= 0) {
                  add_blossom(base, k);
                } else {
                  augment_matching(k);
                  augmented = true;
                  break;
                }
              } else if (label_[w] == 0) {
                SIC_DCHECK(label_[inblossom_[w]] == 2);
                label_[w] = 2;
                labelend_[w] = p ^ 1;
              }
            } else if (label_[inblossom_[w]] == 1) {
              const int b = inblossom_[v];
              if (bestedge_[b] == -1 || kslack < slack(bestedge_[b])) {
                bestedge_[b] = k;
              }
            } else if (label_[w] == 0) {
              if (bestedge_[w] == -1 || kslack < slack(bestedge_[w])) {
                bestedge_[w] = k;
              }
            }
          }
        }
        if (augmented) break;

        // No augmenting path under the current duals; compute the dual
        // adjustment delta.
        int deltatype = -1;
        std::int64_t delta = 0;
        int deltaedge = -1;
        int deltablossom = -1;
        if (!maxcard_) {
          deltatype = 1;
          delta = *std::min_element(dualvar_.begin(), dualvar_.begin() + nv_);
        }
        for (int v = 0; v < nv_; ++v) {
          if (label_[inblossom_[v]] == 0 && bestedge_[v] != -1) {
            const std::int64_t d = slack(bestedge_[v]);
            if (deltatype == -1 || d < delta) {
              delta = d;
              deltatype = 2;
              deltaedge = bestedge_[v];
            }
          }
        }
        for (int b = 0; b < 2 * nv_; ++b) {
          if (blossomparent_[b] == -1 && label_[b] == 1 &&
              bestedge_[b] != -1) {
            const std::int64_t kslack = slack(bestedge_[b]);
            SIC_DCHECK(kslack % 2 == 0);
            const std::int64_t d = kslack / 2;
            if (deltatype == -1 || d < delta) {
              delta = d;
              deltatype = 3;
              deltaedge = bestedge_[b];
            }
          }
        }
        for (int b = nv_; b < 2 * nv_; ++b) {
          if (blossombase_[b] >= 0 && blossomparent_[b] == -1 &&
              label_[b] == 2 && (deltatype == -1 || dualvar_[b] < delta)) {
            delta = dualvar_[b];
            deltatype = 4;
            deltablossom = b;
          }
        }
        if (deltatype == -1) {
          // Max-cardinality optimum reached; final clean-up delta.
          SIC_CHECK(maxcard_);
          deltatype = 1;
          delta = std::max<std::int64_t>(
              0, *std::min_element(dualvar_.begin(), dualvar_.begin() + nv_));
        }

        for (int v = 0; v < nv_; ++v) {
          const int lbl = label_[inblossom_[v]];
          if (lbl == 1) {
            dualvar_[v] -= delta;
          } else if (lbl == 2) {
            dualvar_[v] += delta;
          }
        }
        for (int b = nv_; b < 2 * nv_; ++b) {
          if (blossombase_[b] >= 0 && blossomparent_[b] == -1) {
            if (label_[b] == 1) {
              dualvar_[b] += delta;
            } else if (label_[b] == 2) {
              dualvar_[b] -= delta;
            }
          }
        }

        if (deltatype == 1) {
          break;  // optimum reached
        } else if (deltatype == 2) {
          allowedge_[deltaedge] = true;
          int i = edges_[deltaedge].i;
          if (label_[inblossom_[i]] == 0) i = edges_[deltaedge].j;
          SIC_DCHECK(label_[inblossom_[i]] == 1);
          queue_.push_back(i);
        } else if (deltatype == 3) {
          allowedge_[deltaedge] = true;
          const int i = edges_[deltaedge].i;
          SIC_DCHECK(label_[inblossom_[i]] == 1);
          queue_.push_back(i);
        } else {
          expand_blossom(deltablossom, false);
        }
      }
      if (!augmented) break;
      // End of stage: expand all S-blossoms with zero dual.
      for (int b = nv_; b < 2 * nv_; ++b) {
        if (blossomparent_[b] == -1 && blossombase_[b] >= 0 &&
            label_[b] == 1 && dualvar_[b] == 0) {
          expand_blossom(b, true);
        }
      }
    }

    std::vector<int> result(nv_, -1);
    for (int v = 0; v < nv_; ++v) {
      if (mate_[v] >= 0) result[v] = endpoint_[mate_[v]];
    }
    for (int v = 0; v < nv_; ++v) {
      SIC_DCHECK(result[v] == -1 || result[result[v]] == v);
    }
    return result;
  }

 private:
  [[nodiscard]] std::int64_t slack(int k) const {
    return dualvar_[edges_[k].i] + dualvar_[edges_[k].j] - 2 * edges_[k].w;
  }

  void blossom_leaves(int b, std::vector<int>& out) const {
    if (b < nv_) {
      out.push_back(b);
      return;
    }
    for (const int child : blossomchilds_[b]) blossom_leaves(child, out);
  }

  /// Labels the top-level blossom containing w as S (t=1) or T (t=2),
  /// entered through endpoint p.
  void assign_label(int w, int t, int p) {
    const int b = inblossom_[w];
    SIC_DCHECK(label_[w] == 0 && label_[b] == 0);
    label_[w] = label_[b] = t;
    labelend_[w] = labelend_[b] = p;
    bestedge_[w] = bestedge_[b] = -1;
    if (t == 1) {
      std::vector<int> leaves;
      blossom_leaves(b, leaves);
      queue_.insert(queue_.end(), leaves.begin(), leaves.end());
    } else {
      const int base = blossombase_[b];
      SIC_DCHECK(mate_[base] >= 0);
      assign_label(endpoint_[mate_[base]], 1, mate_[base] ^ 1);
    }
  }

  /// Traces back from the S-vertices v and w; returns the base of a new
  /// blossom, or -1 if an augmenting path was found instead.
  int scan_blossom(int v, int w) {
    std::vector<int> path;
    int base = -1;
    while (v != -1 || w != -1) {
      int b = inblossom_[v];
      if (label_[b] & 4) {
        base = blossombase_[b];
        break;
      }
      SIC_DCHECK(label_[b] == 1);
      path.push_back(b);
      label_[b] |= 4;
      if (mate_[blossombase_[b]] == -1) {
        v = -1;  // reached a single vertex; swap to the other side
      } else {
        v = endpoint_[mate_[blossombase_[b]]];
        b = inblossom_[v];
        SIC_DCHECK(label_[b] == 2);
        SIC_DCHECK(labelend_[b] >= 0);
        v = endpoint_[labelend_[b]];
      }
      if (w != -1) std::swap(v, w);
    }
    for (const int b : path) label_[b] &= ~4;
    return base;
  }

  /// Shrinks the cycle through edge k with the given base into a new
  /// S-blossom.
  void add_blossom(int base, int k) {
    int v = edges_[k].i;
    int w = edges_[k].j;
    const int bb = inblossom_[base];
    int bv = inblossom_[v];
    int bw = inblossom_[w];
    SIC_CHECK_MSG(!unusedblossoms_.empty(), "blossom ids exhausted");
    ++stats_.blossoms_formed;
    const int b = unusedblossoms_.back();
    unusedblossoms_.pop_back();
    blossombase_[b] = base;
    blossomparent_[b] = -1;
    blossomparent_[bb] = b;
    auto& path = blossomchilds_[b];
    auto& endps = blossomendps_[b];
    path.clear();
    endps.clear();
    while (bv != bb) {
      blossomparent_[bv] = b;
      path.push_back(bv);
      endps.push_back(labelend_[bv]);
      SIC_DCHECK(labelend_[bv] >= 0);
      v = endpoint_[labelend_[bv]];
      bv = inblossom_[v];
    }
    path.push_back(bb);
    std::reverse(path.begin(), path.end());
    std::reverse(endps.begin(), endps.end());
    endps.push_back(2 * k);
    while (bw != bb) {
      blossomparent_[bw] = b;
      path.push_back(bw);
      endps.push_back(labelend_[bw] ^ 1);
      SIC_DCHECK(labelend_[bw] >= 0);
      w = endpoint_[labelend_[bw]];
      bw = inblossom_[w];
    }
    SIC_DCHECK(label_[bb] == 1);
    label_[b] = 1;
    labelend_[b] = labelend_[bb];
    dualvar_[b] = 0;
    std::vector<int> leaves;
    blossom_leaves(b, leaves);
    for (const int leaf : leaves) {
      if (label_[inblossom_[leaf]] == 2) queue_.push_back(leaf);
      inblossom_[leaf] = b;
    }
    // Merge least-slack edge lists of the sub-blossoms.
    std::vector<int> bestedgeto(2 * nv_, -1);
    for (const int child : path) {
      std::vector<std::vector<int>> nblists;
      if (!has_bestedges_[child]) {
        std::vector<int> child_leaves;
        blossom_leaves(child, child_leaves);
        for (const int leaf : child_leaves) {
          std::vector<int> ks;
          ks.reserve(neighbend_[leaf].size());
          for (const int p : neighbend_[leaf]) ks.push_back(p / 2);
          nblists.push_back(std::move(ks));
        }
      } else {
        nblists.push_back(blossombestedges_[child]);
      }
      for (const auto& nblist : nblists) {
        for (const int ek : nblist) {
          int j = edges_[ek].j;
          if (inblossom_[j] == b) j = edges_[ek].i;
          const int bj = inblossom_[j];
          if (bj != b && label_[bj] == 1 &&
              (bestedgeto[bj] == -1 || slack(ek) < slack(bestedgeto[bj]))) {
            bestedgeto[bj] = ek;
          }
        }
      }
      blossombestedges_[child].clear();
      has_bestedges_[child] = false;
      bestedge_[child] = -1;
    }
    blossombestedges_[b].clear();
    for (const int ek : bestedgeto) {
      if (ek != -1) blossombestedges_[b].push_back(ek);
    }
    has_bestedges_[b] = true;
    bestedge_[b] = -1;
    for (const int ek : blossombestedges_[b]) {
      if (bestedge_[b] == -1 || slack(ek) < slack(bestedge_[b])) {
        bestedge_[b] = ek;
      }
    }
  }

  /// Dissolves blossom b into its children. During a stage (endstage ==
  /// false) a T-blossom's children must be relabeled along the alternating
  /// path from the entry point to the base.
  void expand_blossom(int b, bool endstage) {
    // Copy: recursive expansion and relabeling mutate child structures.
    const std::vector<int> childs = blossomchilds_[b];
    for (const int s : childs) {
      blossomparent_[s] = -1;
      if (s < nv_) {
        inblossom_[s] = s;
      } else if (endstage && dualvar_[s] == 0) {
        expand_blossom(s, endstage);
      } else {
        std::vector<int> leaves;
        blossom_leaves(s, leaves);
        for (const int leaf : leaves) inblossom_[leaf] = s;
      }
    }
    if (!endstage && label_[b] == 2) {
      SIC_DCHECK(labelend_[b] >= 0);
      const int entrychild = inblossom_[endpoint_[labelend_[b] ^ 1]];
      const int len = static_cast<int>(childs.size());
      int j = static_cast<int>(
          std::find(childs.begin(), childs.end(), entrychild) -
          childs.begin());
      SIC_DCHECK(j < len);
      int jstep;
      int endptrick;
      if (j & 1) {
        j -= len;
        jstep = 1;
        endptrick = 0;
      } else {
        jstep = -1;
        endptrick = 1;
      }
      const auto child_at = [&](int idx) {
        return childs[(idx % len + len) % len];
      };
      const auto endp_at = [&](int idx) {
        const auto& endps = blossomendps_[b];
        return endps[(idx % len + len) % len];
      };
      int p = labelend_[b];
      while (j != 0) {
        label_[endpoint_[p ^ 1]] = 0;
        label_[endpoint_[endp_at(j - endptrick) ^ endptrick ^ 1]] = 0;
        assign_label(endpoint_[p ^ 1], 2, p);
        allowedge_[endp_at(j - endptrick) / 2] = true;
        j += jstep;
        p = endp_at(j - endptrick) ^ endptrick;
        allowedge_[p / 2] = true;
        j += jstep;
      }
      const int bv = child_at(j);
      label_[endpoint_[p ^ 1]] = label_[bv] = 2;
      labelend_[endpoint_[p ^ 1]] = labelend_[bv] = p;
      bestedge_[bv] = -1;
      j += jstep;
      while (child_at(j) != entrychild) {
        const int bw = child_at(j);
        if (label_[bw] == 1) {
          j += jstep;
          continue;
        }
        std::vector<int> leaves;
        blossom_leaves(bw, leaves);
        int labeled = -1;
        for (const int leaf : leaves) {
          if (label_[leaf] != 0) {
            labeled = leaf;
            break;
          }
        }
        if (labeled != -1) {
          SIC_DCHECK(label_[labeled] == 2);
          SIC_DCHECK(inblossom_[labeled] == bw);
          label_[labeled] = 0;
          label_[endpoint_[mate_[blossombase_[bw]]]] = 0;
          assign_label(labeled, 2, labelend_[labeled]);
        }
        j += jstep;
      }
    }
    label_[b] = -1;
    labelend_[b] = -1;
    blossomchilds_[b].clear();
    blossomendps_[b].clear();
    blossombase_[b] = -1;
    blossombestedges_[b].clear();
    has_bestedges_[b] = false;
    bestedge_[b] = -1;
    unusedblossoms_.push_back(b);
  }

  /// Swaps matched/unmatched edges inside blossom b so that vertex v
  /// becomes the blossom's base.
  void augment_blossom(int b, int v) {
    int t = v;
    while (blossomparent_[t] != b) t = blossomparent_[t];
    if (t >= nv_) augment_blossom(t, v);
    auto& childs = blossomchilds_[b];
    auto& endps = blossomendps_[b];
    const int len = static_cast<int>(childs.size());
    const int i = static_cast<int>(
        std::find(childs.begin(), childs.end(), t) - childs.begin());
    SIC_DCHECK(i < len);
    int j = i;
    int jstep;
    int endptrick;
    if (i & 1) {
      j -= len;
      jstep = 1;
      endptrick = 0;
    } else {
      jstep = -1;
      endptrick = 1;
    }
    const auto child_at = [&](int idx) {
      return childs[(idx % len + len) % len];
    };
    const auto endp_at = [&](int idx) {
      return endps[(idx % len + len) % len];
    };
    while (j != 0) {
      j += jstep;
      int tb = child_at(j);
      const int p = endp_at(j - endptrick) ^ endptrick;
      if (tb >= nv_) augment_blossom(tb, endpoint_[p]);
      j += jstep;
      tb = child_at(j);
      if (tb >= nv_) augment_blossom(tb, endpoint_[p ^ 1]);
      mate_[endpoint_[p]] = p ^ 1;
      mate_[endpoint_[p ^ 1]] = p;
    }
    std::rotate(childs.begin(), childs.begin() + i, childs.end());
    std::rotate(endps.begin(), endps.begin() + i, endps.end());
    blossombase_[b] = blossombase_[childs.front()];
    SIC_DCHECK(blossombase_[b] == v);
  }

  /// Augments the matching along the path through edge k.
  void augment_matching(int k) {
    ++stats_.augmentations;
    const int kv = edges_[k].i;
    const int kw = edges_[k].j;
    const std::pair<int, int> starts[2] = {{kv, 2 * k + 1}, {kw, 2 * k}};
    for (const auto& [start_s, start_p] : starts) {
      int s = start_s;
      int p = start_p;
      for (;;) {
        const int bs = inblossom_[s];
        SIC_DCHECK(label_[bs] == 1);
        SIC_DCHECK(labelend_[bs] == mate_[blossombase_[bs]]);
        if (bs >= nv_) augment_blossom(bs, s);
        mate_[s] = p;
        if (labelend_[bs] == -1) break;  // reached a single vertex
        const int t = endpoint_[labelend_[bs]];
        const int bt = inblossom_[t];
        SIC_DCHECK(label_[bt] == 2);
        SIC_DCHECK(labelend_[bt] >= 0);
        s = endpoint_[labelend_[bt]];
        const int j = endpoint_[labelend_[bt] ^ 1];
        SIC_DCHECK(blossombase_[bt] == t);
        if (bt >= nv_) augment_blossom(bt, j);
        mate_[j] = labelend_[bt];
        p = labelend_[bt] ^ 1;
      }
    }
  }

  int nv_;
  std::vector<Edge> edges_;
  bool maxcard_;
  std::int64_t maxweight_;
  std::vector<int> endpoint_;
  std::vector<std::vector<int>> neighbend_;
  std::vector<int> mate_;
  std::vector<int> label_;
  std::vector<int> labelend_;
  std::vector<int> inblossom_;
  std::vector<int> blossomparent_;
  std::vector<int> blossombase_;
  std::vector<std::vector<int>> blossomchilds_;
  std::vector<std::vector<int>> blossomendps_;
  std::vector<int> bestedge_;
  std::vector<std::vector<int>> blossombestedges_;
  std::vector<char> has_bestedges_;
  std::vector<int> unusedblossoms_;
  std::vector<std::int64_t> dualvar_;
  std::vector<char> allowedge_;
  std::vector<int> queue_;
  SolveStats stats_;
};

/// Quantizes double weights onto an even-integer grid (exact dual
/// arithmetic requires even integer weights; evenness keeps delta3 =
/// slack/2 integral).
std::vector<BlossomMatcher::Edge> quantize(std::span<const WeightedEdge> edges) {
  double maxabs = 0.0;
  for (const auto& e : edges) maxabs = std::max(maxabs, std::fabs(e.weight));
  const double scale =
      maxabs > 0.0 ? static_cast<double>(std::int64_t{1} << 26) / maxabs : 1.0;
  std::vector<BlossomMatcher::Edge> out;
  out.reserve(edges.size());
  for (const auto& e : edges) {
    out.push_back(BlossomMatcher::Edge{
        e.u, e.v, 2 * std::llround(e.weight * scale)});
  }
  return out;
}

}  // namespace

std::vector<int> max_weight_matching(int n,
                                     std::span<const WeightedEdge> edges,
                                     bool max_cardinality) {
  SIC_CHECK(n >= 0);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("matching.blossom.wall_s") : nullptr,
      reg != nullptr ? &reg->counter("matching.blossom.calls") : nullptr};
  BlossomMatcher matcher{n, quantize(edges), max_cardinality};
  auto mate = matcher.solve();
  SIC_CHECK(is_valid_mate_vector(mate));
  if (reg != nullptr) {
    const auto& st = matcher.stats();
    reg->counter("matching.blossom.stages").inc(st.stages);
    reg->counter("matching.blossom.augmentations").inc(st.augmentations);
    reg->counter("matching.blossom.edge_visits").inc(st.edge_visits);
    reg->counter("matching.blossom.blossoms_formed").inc(st.blossoms_formed);
    reg->counter("matching.blossom.vertices").inc(
        static_cast<std::uint64_t>(n));
  }
  return mate;
}

Matching min_weight_perfect_matching(const CostMatrix& costs) {
  const int n = costs.size();
  if (n % 2 != 0) {
    throw MatchingError(
        "blossom perfect matching requires an even vertex count, got n = " +
        std::to_string(n));
  }
  Matching result;
  if (n == 0) return result;
  double max_cost = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) max_cost = std::max(max_cost, costs.at(i, j));
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.push_back(WeightedEdge{i, j, max_cost - costs.at(i, j)});
    }
  }
  const auto mate = max_weight_matching(n, edges, /*max_cardinality=*/true);
  int unmatched = 0;
  for (int v = 0; v < n; ++v) {
    if (mate[v] == -1) ++unmatched;
  }
  if (unmatched != 0) {
    throw MatchingError("blossom matching left " + std::to_string(unmatched) +
                        " of " + std::to_string(n) +
                        " vertices unmatched (matching is not perfect)");
  }
  for (int v = 0; v < n; ++v) {
    if (v < mate[v]) {
      result.pairs.emplace_back(v, mate[v]);
      result.total_cost += costs.at(v, mate[v]);
    }
  }
  return result;
}

}  // namespace sic::matching
