#ifndef SICMAC_TOPOLOGY_GEOMETRY_HPP
#define SICMAC_TOPOLOGY_GEOMETRY_HPP

/// \file geometry.hpp
/// Minimal 2-D geometry for node placement.

#include <cmath>

#include "util/rng.hpp"

namespace sic::topology {

/// A point in the plane, meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] inline double distance(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Uniform point in the axis-aligned rectangle [x0,x1]×[y0,y1].
[[nodiscard]] Point random_in_rect(Rng& rng, double x0, double y0, double x1,
                                   double y1);

/// Uniform point in the disc of the given radius around \p center
/// (area-uniform, i.e. radius is sqrt-distributed).
[[nodiscard]] Point random_in_disc(Rng& rng, Point center, double radius);

/// Uniform point in the annulus with radii [r_min, r_max] around \p center.
[[nodiscard]] Point random_in_annulus(Rng& rng, Point center, double r_min,
                                      double r_max);

}  // namespace sic::topology

#endif  // SICMAC_TOPOLOGY_GEOMETRY_HPP
