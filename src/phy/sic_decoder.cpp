#include "phy/sic_decoder.hpp"

#include "util/check.hpp"

namespace sic::phy {

SicDecoder::SicDecoder(const RateAdapter& adapter, SicDecoderConfig config)
    : adapter_(&adapter), config_(config) {
  SIC_CHECK(config_.cancellation_residual >= 0.0 &&
            config_.cancellation_residual <= 1.0);
}

DecodeOutcome SicDecoder::decode(const TwoSignalArrival& arrival,
                                 BitsPerSecond rate_of_stronger,
                                 BitsPerSecond rate_of_weaker) const {
  DecodeOutcome out;
  const double sinr_strong =
      sinr(arrival.stronger, arrival.weaker, arrival.noise);
  out.stronger_decoded = adapter_->feasible(rate_of_stronger, sinr_strong);
  if (!out.stronger_decoded || !config_.sic_capable) return out;

  // ADC saturation: disparity too large to represent the weaker signal.
  const Decibels disparity =
      Decibels::from_linear(arrival.stronger / arrival.weaker);
  if (disparity > config_.max_decodable_disparity) return out;

  const double sinr_weak_after_cancel =
      sinr(arrival.weaker, arrival.stronger * config_.cancellation_residual,
           arrival.noise);
  out.weaker_decoded = adapter_->feasible(rate_of_weaker, sinr_weak_after_cancel);
  return out;
}

bool SicDecoder::decode_single(Milliwatts signal, Milliwatts noise,
                               BitsPerSecond rate) const {
  return adapter_->feasible(rate, sinr(signal, Milliwatts{0.0}, noise));
}

}  // namespace sic::phy
