#ifndef SICMAC_TRACE_STATS_HPP
#define SICMAC_TRACE_STATS_HPP

/// \file stats.hpp
/// Descriptive statistics over an RSSI trace. The quantity that decides
/// how much the Fig. 13 pairing gains can be is the *pairwise RSS
/// disparity* distribution among clients backlogged at the same AP
/// (DESIGN.md, substitution 1): the Fig. 4 ridge wants the stronger client
/// ~2x (in dB SNR) over the weaker. This module computes that census, plus
/// occupancy and load summaries, for any trace — synthetic or real.

#include <cstdint>
#include <vector>

#include "trace/snapshot.hpp"

namespace sic::trace {

struct TraceStats {
  std::size_t snapshots = 0;
  std::size_t observations = 0;
  /// Distribution of clients-per-(snapshot, AP) cell (only non-empty cells).
  double mean_clients_per_cell = 0.0;
  int max_clients_per_cell = 0;
  std::size_t cells_with_pairing_potential = 0;  ///< >= 2 clients
  /// RSSI distribution across all observations, dBm.
  double rssi_mean_dbm = 0.0;
  double rssi_stddev_db = 0.0;
  /// Pairwise |RSSI_i − RSSI_j| in dB over all client pairs sharing a cell.
  std::vector<double> pairwise_disparity_db;

  /// Fraction of same-cell pairs whose disparity lies within \p band_db of
  /// the Fig. 4 ridge: the stronger client's SNR ≈ 2x the weaker's, i.e.
  /// disparity ≈ weaker-SNR dB. Needs the noise floor to convert RSSI→SNR.
  [[nodiscard]] double ridge_fraction(double noise_floor_dbm,
                                      double band_db = 3.0) const;

 private:
  friend TraceStats compute_trace_stats(const RssiTrace& trace);
  /// Per-pair (weaker SNR proxy, disparity) retained for ridge analysis.
  std::vector<std::pair<double, double>> pair_weak_rssi_and_disparity_;
};

[[nodiscard]] TraceStats compute_trace_stats(const RssiTrace& trace);

}  // namespace sic::trace

#endif  // SICMAC_TRACE_STATS_HPP
