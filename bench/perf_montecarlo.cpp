/// Throughput of the deterministic parallel Monte Carlo engine. Runs each
/// ported sweep at every thread count in --threads-list (default 1,2,4)
/// and prints one JSON line per (sweep, threads):
///
///   {"bench":"perf_montecarlo","sweep":"two_link_gains","threads":4,
///    "trials":20000,"wall_ms":412.0,"samples_per_sec":48543.7,
///    "speedup_vs_1":3.41,"identical_to_1_thread":true}
///
/// so CI can assert both the speedup and the bit-identity of the samples
/// across thread counts. Flags: --trials N, --threads-list a,b,c.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analysis/montecarlo.hpp"
#include "analysis/trace_eval.hpp"
#include "bench_util.hpp"
#include "trace/link_trace.hpp"

namespace {

using namespace sic;

struct Sweep {
  const char* name;
  std::int64_t samples;  ///< samples produced per run (for the rate)
  std::function<std::vector<double>(int threads)> run;
};

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args{argc, argv};
  const int trials = args.get_int("trials", 20000);
  std::vector<int> thread_counts;
  for (const double t : args.get_double_list("threads-list")) {
    thread_counts.push_back(static_cast<int>(t));
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4};

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  const topology::SamplerConfig config;
  constexpr double kBits = 12000.0;
  constexpr std::uint64_t kSeed = 42;

  trace::LinkTraceConfig campaign;
  const auto link_trace = generate_link_trace(campaign, 777);

  const std::vector<Sweep> sweeps{
      {"two_link_gains", trials,
       [&](int threads) {
         return analysis::run_two_link_gains(config, shannon, trials, kSeed,
                                             kBits, threads);
       }},
      {"two_to_one_techniques", trials,
       [&](int threads) {
         return analysis::run_two_to_one_techniques(config, shannon, trials,
                                                    kSeed, kBits, threads)
             .sic;
       }},
      {"upload_deployment_gains", trials / 20,
       [&](int threads) {
         return analysis::run_upload_deployment_gains(
             config, shannon, trials / 20, 8, kSeed, kBits, threads);
       }},
      {"download_trace", trials / 4,
       [&](int threads) {
         analysis::DownloadTraceEvalConfig eval;
         eval.pair_samples = trials / 4;
         eval.threads = threads;
         return analysis::evaluate_download_trace(link_trace, shannon, eval)
             .plain;
       }},
  };

  for (const auto& sweep : sweeps) {
    std::vector<double> baseline;
    double baseline_rate = 0.0;
    for (const int threads : thread_counts) {
      const bench::RunTimer timer;
      const auto samples = sweep.run(threads);
      const double wall_ms = 1e3 * timer.elapsed_s();
      const double rate =
          wall_ms > 0.0 ? 1e3 * static_cast<double>(sweep.samples) / wall_ms
                        : 0.0;
      bool identical = true;
      if (baseline.empty()) {
        baseline = samples;
        baseline_rate = rate;
      } else {
        identical = samples.size() == baseline.size();
        for (std::size_t i = 0; identical && i < samples.size(); ++i) {
          identical = samples[i] == baseline[i];
        }
      }
      const double speedup = baseline_rate > 0.0 ? rate / baseline_rate : 0.0;
      std::printf(
          "{\"bench\":\"perf_montecarlo\",\"sweep\":\"%s\",\"threads\":%d,"
          "\"trials\":%lld,\"wall_ms\":%.1f,\"samples_per_sec\":%.1f,"
          "\"speedup_vs_%d\":%.2f,\"identical_to_first\":%s}\n",
          sweep.name, threads, static_cast<long long>(sweep.samples), wall_ms,
          rate, thread_counts.front(), speedup, identical ? "true" : "false");
      if (!identical) return 1;  // determinism contract broken
    }
  }
  return 0;
}
