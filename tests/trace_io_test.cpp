#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace sic::trace {
namespace {

RssiTrace tiny_trace() {
  RssiTrace t;
  Snapshot s0;
  s0.timestamp_s = 0;
  s0.aps.push_back(
      ApSnapshot{0, {{10, Dbm{-55.5}}, {11, Dbm{-71.25}}}});
  s0.aps.push_back(ApSnapshot{1, {{12, Dbm{-60.0}}}});
  Snapshot s1;
  s1.timestamp_s = 900;
  s1.aps.push_back(ApSnapshot{0, {{10, Dbm{-56.0}}}});
  t.snapshots = {s0, s1};
  return t;
}

TEST(TraceIo, RoundTripPreservesObservations) {
  const RssiTrace original = tiny_trace();
  std::stringstream ss;
  write_csv(original, ss);
  const RssiTrace parsed = read_csv(ss);
  ASSERT_EQ(parsed.snapshots.size(), 2u);
  EXPECT_EQ(parsed.snapshots[0].timestamp_s, 0);
  EXPECT_EQ(parsed.snapshots[1].timestamp_s, 900);
  EXPECT_EQ(parsed.total_observations(), original.total_observations());
  // Find AP 0's clients in the first snapshot.
  const auto& ap0 = parsed.snapshots[0].aps[0];
  ASSERT_EQ(ap0.clients.size(), 2u);
  EXPECT_EQ(ap0.clients[0].client_id, 10u);
  EXPECT_DOUBLE_EQ(ap0.clients[0].rssi.value(), -55.5);
  EXPECT_DOUBLE_EQ(ap0.clients[1].rssi.value(), -71.25);
}

TEST(TraceIo, HeaderValidated) {
  std::stringstream ss{"wrong,header\n"};
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
  std::stringstream empty{""};
  EXPECT_THROW((void)read_csv(empty), std::runtime_error);
}

TEST(TraceIo, MalformedRowRejected) {
  std::stringstream ss{
      "timestamp_s,ap_id,client_id,rssi_dbm\n0,1,notanumber,-50\n"};
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, BlankLinesIgnored) {
  std::stringstream ss{
      "timestamp_s,ap_id,client_id,rssi_dbm\n0,0,1,-50\n\n900,0,1,-51\n"};
  const RssiTrace t = read_csv(ss);
  EXPECT_EQ(t.snapshots.size(), 2u);
}

TEST(TraceIo, GeneratedTraceRoundTrips) {
  BuildingConfig config;
  config.duration_s = 2 * 3600;
  const RssiTrace original = generate_building_trace(config, 21);
  std::stringstream ss;
  write_csv(original, ss);
  const RssiTrace parsed = read_csv(ss);
  EXPECT_EQ(parsed.total_observations(), original.total_observations());
}

TEST(TraceIo, FileRoundTrip) {
  const RssiTrace original = tiny_trace();
  const std::string path = ::testing::TempDir() + "/sicmac_trace_test.csv";
  write_csv_file(original, path);
  const RssiTrace parsed = read_csv_file(path);
  EXPECT_EQ(parsed.total_observations(), original.total_observations());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/sicmac.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace sic::trace
