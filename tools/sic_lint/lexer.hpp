/// sic_lint lexer — single-pass tokenizer for the lint engine.
///
/// PR 5's rules ran on a regex view of the source with comments and string
/// literals blanked. That was enough for per-line idiom checks but not for
/// the scope-aware rule families (include-layer DAG, RNG discipline inside
/// loop bodies, computed-double comparisons): those need real tokens with
/// positions, brace/paren depth, the enclosing function, and preprocessor
/// structure. This lexer provides exactly that — it is still not a compiler
/// front end (no phase-2 splice normalization outside the contexts that
/// matter, no macro expansion), but every construct the rules inspect is
/// tokenized faithfully:
///
///   - `//` and `/* */` comments, including backslash-newline continuations
///     inside `//` comments (a phase-2 splice keeps the next physical line
///     inside the comment — the old blanking scanner got this wrong).
///   - string/char literals with escapes, encoding prefixes (u8/u/U/L) and
///     raw strings with arbitrary delimiters.
///   - pp-numbers with digit separators (1'000'000), hex floats, exponent
///     signs — a separator quote never opens a char literal.
///   - preprocessor directives: tokens carry an `pp` flag, directive
///     continuations via backslash-newline are tracked, and `#include`
///     targets are extracted with their line numbers for the layer-DAG rule.
///   - brace and paren depth per token (preprocessor tokens excluded so an
///     unbalanced macro body cannot corrupt the scope tracking).
///
/// On top of the raw stream, analyze_scopes() derives the spans the rules
/// need: enclosing-function names (best-effort: the identifier before the
/// parameter list of a brace-introduced body) and loop-body token ranges
/// (for/while/do, brace-delimited or single-statement).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sic::lint {

enum class TokKind {
  kIdent,    ///< identifiers and keywords
  kNumber,   ///< pp-numbers (integer/float, any base, digit separators)
  kString,   ///< string literals incl. raw/encoded; text is the full spelling
  kChar,     ///< character literals
  kPunct,    ///< operators and punctuation (maximal munch)
  kComment,  ///< // or /* */ comment, full text incl. delimiters
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;           ///< exact source spelling
  std::size_t offset = 0;     ///< byte offset of the first character
  int line = 1;               ///< 1-based physical line of the first char
  int col = 1;                ///< 1-based column of the first char
  int brace_depth = 0;        ///< `{}` nesting at the token (pp excluded)
  int paren_depth = 0;        ///< `()` nesting at the token (pp excluded)
  bool pp = false;            ///< inside a preprocessor directive
};

/// One `#include` directive.
struct IncludeDirective {
  std::string target;  ///< path between the delimiters
  bool quoted = false; ///< `"..."` (project include) vs `<...>` (system)
  int line = 1;
};

/// Lexing result: code tokens and comments in separate channels (rules scan
/// code; suppression parsing scans comments), plus the include directives.
struct LexedFile {
  std::vector<Token> tokens;    ///< code tokens in source order (no comments)
  std::vector<Token> comments;  ///< comment tokens in source order
  std::vector<IncludeDirective> includes;
};

[[nodiscard]] LexedFile lex(std::string_view source);

/// Inclusive token-index range [begin, end] into LexedFile::tokens.
struct TokenSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A function body: the tokens between (and excluding) its outermost braces.
struct FunctionSpan {
  std::string name;  ///< best-effort identifier before the parameter list
  TokenSpan body;
};

struct ScopeInfo {
  std::vector<FunctionSpan> functions;  ///< in order of opening brace
  std::vector<TokenSpan> loop_bodies;   ///< for/while/do bodies, in order
};

[[nodiscard]] ScopeInfo analyze_scopes(const std::vector<Token>& tokens);

/// Index of the token matching the opener at `open` (same kind of bracket,
/// pp tokens ignored), or tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& tokens,
                                        std::size_t open);

}  // namespace sic::lint
