#include "phy/rate_adapter.hpp"

#include "phy/capacity.hpp"

namespace sic::phy {

BitsPerSecond ShannonRateAdapter::rate(double sinr_linear) const {
  return shannon_rate(bandwidth_, sinr_linear);
}

BitsPerSecond DiscreteRateAdapter::rate(double sinr_linear) const {
  if (sinr_linear <= 0.0) return BitsPerSecond{0.0};
  return table_->best_rate(Decibels::from_linear(sinr_linear));
}

}  // namespace sic::phy
