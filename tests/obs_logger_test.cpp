// Leveled-logger tests: off by default, level filtering, cheap disabled
// call sites (arguments not evaluated), and level-name parsing.

#include "obs/logger.hpp"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace sic::obs {
namespace {

// The logger is process-global state; every test restores it on exit.
class ObsLogger : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_level_ = log_level();
    prev_sink_ = set_log_sink(&captured_);
  }
  void TearDown() override {
    set_log_level(prev_level_);
    set_log_sink(prev_sink_);
  }

  std::ostringstream captured_;

 private:
  LogLevel prev_level_ = LogLevel::kOff;
  std::ostream* prev_sink_ = nullptr;
};

TEST_F(ObsLogger, OffByDefaultSwallowsEverything) {
  set_log_level(LogLevel::kOff);
  SIC_LOG_ERROR("boom %d", 1);
  SIC_LOG_DEBUG("detail");
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(ObsLogger, LevelFiltersMoreVerboseMessages) {
  set_log_level(LogLevel::kWarn);
  SIC_LOG_ERROR("e");
  SIC_LOG_WARN("w");
  SIC_LOG_INFO("i");
  SIC_LOG_DEBUG("d");
  const std::string out = captured_.str();
  EXPECT_NE(out.find("[sic error] e"), std::string::npos) << out;
  EXPECT_NE(out.find("[sic warn] w"), std::string::npos) << out;
  EXPECT_EQ(out.find(" i"), std::string::npos) << out;
  EXPECT_EQ(out.find(" d"), std::string::npos) << out;
}

TEST_F(ObsLogger, FormatsPrintfStyleWithNewline) {
  set_log_level(LogLevel::kInfo);
  SIC_LOG_INFO("sweep %d/%d (%.1f samples/s)", 3, 10, 250.0);
  EXPECT_EQ(captured_.str(), "[sic info] sweep 3/10 (250.0 samples/s)\n");
}

TEST_F(ObsLogger, DisabledCallSiteDoesNotEvaluateArguments) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  SIC_LOG_DEBUG("%d", ++evaluations);
  EXPECT_EQ(evaluations, 0);
  SIC_LOG_ERROR("%d", ++evaluations);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(ObsLogger, LogEnabledMatchesLevelOrdering) {
  set_log_level(LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
}

TEST(ObsLoggerNames, ParseAcceptsExactlyTheDocumentedNames) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("INFO").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(ObsLoggerNames, ToStringRoundTrips) {
  for (const LogLevel level : {LogLevel::kOff, LogLevel::kError,
                               LogLevel::kWarn, LogLevel::kInfo,
                               LogLevel::kDebug}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

}  // namespace
}  // namespace sic::obs
