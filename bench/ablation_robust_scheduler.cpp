/// Ablation — closed-loop robust scheduling under injected faults. The
/// Section 6 scheduler plans on a frozen, perfect channel snapshot; the
/// open-loop executor of the seed simply flew the plan and silently lost
/// whatever reality disagreed with. This bench injects the three fault
/// families of mac/fault_model.hpp (stale AR(1) RSS, probabilistic
/// cancellation failures, ACK loss) and compares:
///
///   open    — recovery disabled: every failed exchange is a silent drop
///             (the seed's behavior under faults)
///   closed  — bounded retries, mode degradation, demotion, and periodic
///             re-estimation + re-matching of the residual backlog
///   closed+margin — the same, planned with a 3 dB admission margin
///
/// Headline: at the acceptance point (1% cancellation failures, 4 dB stale
/// RSS, 1% ACK loss) the closed loop confirms 100% of the backlog (zero
/// unrecovered drops) while the open loop loses a large fraction outright;
/// the admission margin then buys back most of the retry overhead.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/scheduler.hpp"
#include "mac/upload_sim.hpp"
#include "phy/rate_adapter.hpp"

namespace {

struct Scenario {
  const char* name;
  sic::mac::FaultConfig faults;
};

struct Row {
  double confirmed_frac = 0.0;
  double unrecovered = 0.0;
  double retries = 0.0;
  double duplicates = 0.0;
  double rate_misses = 0.0;
  double cancel_fails = 0.0;
  double ack_losses = 0.0;
  double rematch_rounds = 0.0;
  double completion_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  const auto csv = bench::csv_prefix(argc, argv);
  bench::header(
      "Ablation — closed-loop robust scheduling under injected faults",
      "the schedule is a plan, not a guarantee; confirmation + retry turn "
      "silent losses into bounded extra airtime");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  const Milliwatts noise{1.0};
  std::vector<channel::LinkBudget> clients;
  for (const double snr_db : {27.0, 24.0, 21.0, 18.0, 15.0, 12.0, 9.0, 6.0}) {
    clients.push_back(
        channel::LinkBudget{noise * Decibels{snr_db}.linear(), noise});
  }

  const Scenario scenarios[] = {
      {"no-faults", {}},
      {"cancel-10%", {Decibels{0.0}, 0.9, 0.1, 0.0, {}}},
      {"stale-4dB", {Decibels{4.0}, 0.9, 0.0, 0.0, {}}},
      {"ack-loss-1%", {Decibels{0.0}, 0.9, 0.0, 0.01, {}}},
      {"combined", {Decibels{4.0}, 0.9, 0.01, 0.01, {}}},
  };
  constexpr int kSeeds = 25;

  std::ostringstream csv_rows;
  csv_rows << "scenario,loop,confirmed_frac,unrecovered,retries,duplicates,"
              "rate_misses,cancellation_failures,ack_losses,rematch_rounds,"
              "completion_s\n";
  std::printf("%-12s %-14s %-10s %-8s %-8s %-8s %-8s %-8s %-8s %-8s\n",
              "scenario", "loop", "confirmed", "unrec", "retries", "dups",
              "r-miss", "cancel", "ackloss", "time_s");

  for (const Scenario& scenario : scenarios) {
    struct Variant {
      const char* name;
      bool recovery;
      double margin_db;
    };
    const Variant variants[] = {
        {"open", false, 0.0},
        {"closed", true, 0.0},
        {"closed+margin", true, 3.0},
    };
    for (const Variant& variant : variants) {
      core::SchedulerOptions options;
      options.admission_margin_db = Decibels{variant.margin_db};
      const core::Schedule schedule =
          core::schedule_upload(clients, shannon, options);

      Row mean;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        mac::UploadSimConfig config;
        config.faults = scenario.faults;
        config.recovery.enabled = variant.recovery;
        config.recovery.rematch_options = options;
        config.seed = static_cast<std::uint64_t>(seed);
        const auto r =
            mac::run_scheduled_upload(clients, shannon, schedule, config);
        const double offered = static_cast<double>(r.offered);
        mean.confirmed_frac +=
            (offered - static_cast<double>(r.failures.unrecovered)) / offered;
        mean.unrecovered += static_cast<double>(r.failures.unrecovered);
        mean.retries += static_cast<double>(r.failures.retransmissions);
        mean.duplicates += static_cast<double>(r.failures.duplicate_deliveries);
        mean.rate_misses += static_cast<double>(r.failures.rate_misses);
        mean.cancel_fails +=
            static_cast<double>(r.failures.cancellation_failures);
        mean.ack_losses += static_cast<double>(r.failures.ack_losses);
        mean.rematch_rounds += static_cast<double>(r.failures.rematch_rounds);
        mean.completion_s += r.completion_s;
      }
      const double k = static_cast<double>(kSeeds);
      mean.confirmed_frac /= k;
      mean.unrecovered /= k;
      mean.retries /= k;
      mean.duplicates /= k;
      mean.rate_misses /= k;
      mean.cancel_fails /= k;
      mean.ack_losses /= k;
      mean.rematch_rounds /= k;
      mean.completion_s /= k;

      std::printf(
          "%-12s %-14s %-10.4f %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f "
          "%-8.4f\n",
          scenario.name, variant.name, mean.confirmed_frac, mean.unrecovered,
          mean.retries, mean.duplicates, mean.rate_misses, mean.cancel_fails,
          mean.ack_losses, mean.completion_s);
      csv_rows << scenario.name << ',' << variant.name << ','
               << mean.confirmed_frac << ',' << mean.unrecovered << ','
               << mean.retries << ',' << mean.duplicates << ','
               << mean.rate_misses << ',' << mean.cancel_fails << ','
               << mean.ack_losses << ',' << mean.rematch_rounds << ','
               << mean.completion_s << '\n';
    }
  }

  std::printf(
      "\n(8 clients, 6-27 dB SNR, %d seeds per cell. confirmed = frames the "
      "station got an ACK for / offered; unrec = frames abandoned. The open "
      "loop drops every fault-hit frame; the closed loop confirms all of "
      "them, paying in retries and duplicates. A 3 dB admission margin "
      "absorbs most 4 dB-sigma drift at plan time, cutting the retries the "
      "closed loop needs.)\n",
      kSeeds);
  if (csv) {
    // 5 scenarios x 3 variants x kSeeds simulated runs went into the file.
    bench::write_text_file(
        *csv + "robust_scheduler.csv",
        bench::manifest(/*seed=*/1, timer,
                        static_cast<std::uint64_t>(5 * 3 * kSeeds)) +
            csv_rows.str());
  }
  return 0;
}
