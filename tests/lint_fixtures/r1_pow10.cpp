// Lint fixture: R1 — hand-rolled dB<->linear conversions.
// Comments mentioning pow(10, x/10) or log10 must NOT trip the rule.
#include <cmath>

double db_to_linear(double db) {
  return std::pow(10.0, db / 10.0);  // line 6: R1 violation (pow)
}

double linear_to_db(double ratio) {
  return 10.0 * std::log10(ratio);  // line 10: R1 violation (log10)
}

const char* innocuous() {
  return "pow(10, x/10) inside a string literal is fine";
}
