// Lint fixture: R6 — RNG substream discipline in a parallel TU.
// The mention of parallel_for below marks this translation unit as
// parallel; from then on, per-iteration randomness must come from the
// counter-based Rng::at(seed, index).

struct Rng {
  explicit Rng(unsigned long seed);
  static Rng at(unsigned long seed, unsigned long index);
  Rng fork();
  double uniform();
};

void parallel_for(int n, void (*body)(int));

double sweep(unsigned long seed, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    Rng rng(seed + static_cast<unsigned long>(i));  // line 18: R6 (ctor in loop)
    acc += rng.uniform();
  }
  Rng outer(seed);  // clean: top-of-function construction, not in a loop
  for (int i = 0; i < n; ++i) {
    Rng forked = outer.fork();  // line 23: R6 (.fork() in loop)
    acc += forked.uniform();
  }
  for (int i = 0; i < n; ++i) {
    Rng sub = Rng::at(seed, static_cast<unsigned long>(i));  // clean: counter-based
    acc += sub.uniform();
  }
  return acc;
}
