#include "mac/medium.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "phy/capacity.hpp"

namespace sic::mac {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

class Recorder : public MediumListener {
 public:
  struct Delivery {
    Frame frame;
    bool decoded;
  };
  std::vector<Delivery> deliveries;
  int channel_updates = 0;

  void on_channel_update() override { ++channel_updates; }
  void on_frame_received(const Frame& frame, bool decoded) override {
    deliveries.push_back(Delivery{frame, decoded});
  }
};

Frame data_frame(MacNodeId src, MacNodeId dst, double bits,
                 std::uint64_t id = 1) {
  Frame f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.payload_bits = bits;
  return f;
}

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(queue_, 3, kN0, kShannon) {
    // Node 0 = receiver; 1, 2 = transmitters.
    medium_.set_gain(1, 0, Milliwatts{Decibels{25.0}.linear()});
    medium_.set_gain(2, 0, Milliwatts{Decibels{12.0}.linear()});
    medium_.set_gain(1, 2, Milliwatts{Decibels{20.0}.linear()});
    medium_.attach(0, &rx_);
  }

  BitsPerSecond feasible_rate(double snr_db) {
    return kShannon.rate(Decibels{snr_db}.linear());
  }

  EventQueue queue_;
  Medium medium_;
  Recorder rx_;
};

TEST_F(MediumTest, CleanFrameDelivered) {
  medium_.transmit(data_frame(1, 0, 12000.0), feasible_rate(25.0));
  queue_.run();
  ASSERT_EQ(rx_.deliveries.size(), 1u);
  EXPECT_TRUE(rx_.deliveries[0].decoded);
  EXPECT_EQ(medium_.stats().delivered, 1u);
}

TEST_F(MediumTest, OverRateFrameFailsClean) {
  medium_.transmit(data_frame(1, 0, 12000.0),
                   BitsPerSecond{feasible_rate(25.0).value() * 1.01});
  queue_.run();
  ASSERT_EQ(rx_.deliveries.size(), 1u);
  EXPECT_FALSE(rx_.deliveries[0].decoded);
  EXPECT_EQ(medium_.stats().failed_clean, 1u);
}

TEST_F(MediumTest, SicCollisionDeliversBoth) {
  // Rates at the SIC-feasible pair point for 25/12 dB.
  const auto arrival = phy::TwoSignalArrival::make(
      Milliwatts{Decibels{25.0}.linear()}, Milliwatts{Decibels{12.0}.linear()},
      kN0);
  const auto r_strong = phy::sic_rate_stronger(megahertz(20.0), arrival);
  const auto r_weak = phy::sic_rate_weaker(megahertz(20.0), arrival);
  medium_.transmit(data_frame(1, 0, 12000.0, 1), r_strong);
  medium_.transmit(data_frame(2, 0, 12000.0, 2), r_weak);
  queue_.run();
  ASSERT_EQ(rx_.deliveries.size(), 2u);
  EXPECT_TRUE(rx_.deliveries[0].decoded);
  EXPECT_TRUE(rx_.deliveries[1].decoded);
  EXPECT_EQ(medium_.stats().delivered, 2u);
  EXPECT_EQ(medium_.stats().sic_decodes, 1u);
  EXPECT_EQ(medium_.stats().capture_decodes, 1u);
}

TEST_F(MediumTest, NonSicMediumLosesWeakerFrame) {
  EventQueue queue;
  phy::SicDecoderConfig config;
  config.sic_capable = false;
  Medium medium{queue, 3, kN0, kShannon, config};
  medium.set_gain(1, 0, Milliwatts{Decibels{25.0}.linear()});
  medium.set_gain(2, 0, Milliwatts{Decibels{12.0}.linear()});
  Recorder rx;
  medium.attach(0, &rx);
  const auto arrival = phy::TwoSignalArrival::make(
      Milliwatts{Decibels{25.0}.linear()}, Milliwatts{Decibels{12.0}.linear()},
      kN0);
  medium.transmit(data_frame(1, 0, 12000.0, 1),
                  phy::sic_rate_stronger(megahertz(20.0), arrival));
  medium.transmit(data_frame(2, 0, 12000.0, 2),
                  phy::sic_rate_weaker(megahertz(20.0), arrival));
  queue.run();
  ASSERT_EQ(rx.deliveries.size(), 2u);
  int decoded = 0;
  for (const auto& d : rx.deliveries) {
    if (d.decoded) ++decoded;
  }
  EXPECT_EQ(decoded, 1);  // capture only
  EXPECT_EQ(medium.stats().sic_decodes, 0u);
}

TEST_F(MediumTest, ClashAtFullCleanRatesFails) {
  // Both transmit at their clean best rates — the classic collision the
  // paper says SIC cannot save (rates too high for the SINRs).
  medium_.transmit(data_frame(1, 0, 12000.0, 1), feasible_rate(25.0));
  medium_.transmit(data_frame(2, 0, 12000.0, 2), feasible_rate(12.0));
  queue_.run();
  ASSERT_EQ(rx_.deliveries.size(), 2u);
  EXPECT_FALSE(rx_.deliveries[0].decoded);
  EXPECT_FALSE(rx_.deliveries[1].decoded);
  EXPECT_EQ(medium_.stats().failed_collision, 2u);
}

TEST_F(MediumTest, ThreeWayPileUpFails) {
  EventQueue queue;
  Medium medium{queue, 4, kN0, kShannon};
  Recorder rx;
  medium.attach(0, &rx);
  for (MacNodeId s : {1, 2, 3}) {
    medium.set_gain(s, 0, Milliwatts{Decibels{20.0 + s}.linear()});
  }
  for (MacNodeId s : {1, 2, 3}) {
    medium.transmit(data_frame(s, 0, 12000.0, static_cast<std::uint64_t>(s)),
                    megabits_per_second(1.0));
  }
  queue.run();
  ASSERT_EQ(rx.deliveries.size(), 3u);
  for (const auto& d : rx.deliveries) EXPECT_FALSE(d.decoded);
}

TEST_F(MediumTest, HalfDuplexReceiverCannotDecode) {
  Recorder rx2;
  medium_.attach(2, &rx2);
  // Node 2 transmits to 0 while node 1 transmits to 2 — node 2 is busy.
  medium_.transmit(data_frame(2, 0, 12000.0, 1), megabits_per_second(1.0));
  medium_.transmit(data_frame(1, 2, 12000.0, 2), megabits_per_second(1.0));
  queue_.run();
  ASSERT_EQ(rx2.deliveries.size(), 1u);
  EXPECT_FALSE(rx2.deliveries[0].decoded);
}

TEST_F(MediumTest, CarrierSenseRespectsThreshold) {
  EXPECT_FALSE(medium_.carrier_busy(2));
  medium_.transmit(data_frame(1, 0, 12000.0), megabits_per_second(6.0));
  // Node 2 hears node 1 at 20 dB > the 12 dB threshold.
  EXPECT_TRUE(medium_.carrier_busy(2));
  EXPECT_TRUE(medium_.carrier_busy(1));  // own transmission
  queue_.run();
  EXPECT_FALSE(medium_.carrier_busy(2));
}

TEST_F(MediumTest, PowerScaleReducesRss) {
  // At scale, the weaker signal falls below decodability for its rate.
  const auto rate = feasible_rate(12.0);  // needs full power
  medium_.transmit(data_frame(2, 0, 12000.0), rate, /*power_scale=*/0.5);
  queue_.run();
  ASSERT_EQ(rx_.deliveries.size(), 1u);
  EXPECT_FALSE(rx_.deliveries[0].decoded);
}

TEST_F(MediumTest, SequentialFramesDoNotInterfere) {
  medium_.transmit(data_frame(1, 0, 12000.0, 1), feasible_rate(25.0));
  queue_.run();
  medium_.transmit(data_frame(2, 0, 12000.0, 2), feasible_rate(12.0));
  queue_.run();
  ASSERT_EQ(rx_.deliveries.size(), 2u);
  EXPECT_TRUE(rx_.deliveries[0].decoded);
  EXPECT_TRUE(rx_.deliveries[1].decoded);
}

TEST_F(MediumTest, OverhearingDeliversDecodableForeignFrames) {
  Recorder rx2;
  medium_.attach(2, &rx2);
  // Node 1 -> node 0 at a rate node 2 can also decode (node 2 hears node 1
  // at 20 dB).
  medium_.transmit(data_frame(1, 0, 12000.0), megabits_per_second(6.0));
  queue_.run();
  // Node 2 got no on_frame_received (not the dst)...
  EXPECT_TRUE(rx2.deliveries.empty());
  // ...but the medium reported it as overheard via the listener interface.
  // (Recorder does not override on_frame_overheard; use a dedicated one.)
  struct Overhearer : MediumListener {
    int overheard = 0;
    void on_frame_overheard(const Frame&) override { ++overheard; }
  } oh;
  medium_.attach(2, &oh);
  medium_.transmit(data_frame(1, 0, 12000.0, 2), megabits_per_second(6.0));
  queue_.run();
  EXPECT_EQ(oh.overheard, 1);
}

TEST_F(MediumTest, NoOverhearingAboveDecodableRate) {
  struct Overhearer : MediumListener {
    int overheard = 0;
    void on_frame_overheard(const Frame&) override { ++overheard; }
  } oh;
  medium_.attach(2, &oh);
  // Node 1 -> 0 faster than node 2's 20 dB channel can decode.
  const auto too_fast = BitsPerSecond{feasible_rate(20.0).value() * 1.5};
  medium_.transmit(data_frame(1, 0, 12000.0), too_fast);
  queue_.run();
  EXPECT_EQ(oh.overheard, 0);
}

TEST_F(MediumTest, ReceivingStateTracksDestination) {
  EXPECT_FALSE(medium_.is_receiving(0));
  medium_.transmit(data_frame(1, 0, 12000.0), megabits_per_second(6.0));
  EXPECT_TRUE(medium_.is_receiving(0));
  EXPECT_FALSE(medium_.is_receiving(2));
  EXPECT_TRUE(medium_.is_transmitting(1));
  queue_.run();
  EXPECT_FALSE(medium_.is_receiving(0));
}

TEST_F(MediumTest, DoubleTransmitFromSameNodeRejected) {
  medium_.transmit(data_frame(1, 0, 12000.0), megabits_per_second(6.0));
  EXPECT_THROW(
      medium_.transmit(data_frame(1, 0, 12000.0), megabits_per_second(6.0)),
      std::logic_error);
}

}  // namespace
}  // namespace sic::mac
