#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sic {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_EQ(ThreadPool::resolve(1), 1);
  EXPECT_EQ(ThreadPool::resolve(4), 4);
  EXPECT_EQ(ThreadPool::resolve(-3), 1);  // clamped
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, 7, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexProcessedExactlyOnce) {
  for (const int threads : {2, 4, 7}) {
    ThreadPool pool{threads};
    EXPECT_EQ(pool.threads(), threads);
    constexpr std::int64_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, 13, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                    std::memory_order_relaxed);
      }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool{3};
  int calls = 0;
  pool.parallel_for(0, 8, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool{3};
  for (int job = 0; job < 20; ++job) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(100, 9, [&](std::int64_t begin, std::int64_t end) {
      std::int64_t local = 0;
      for (std::int64_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(ThreadPool, FirstChunkExceptionPropagates) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(1000, 5,
                        [&](std::int64_t begin, std::int64_t) {
                          if (begin >= 500) {
                            throw std::runtime_error{"chunk failed"};
                          }
                        }),
      std::runtime_error);
  // The pool survives a failed job and accepts the next one.
  std::atomic<int> ran{0};
  pool.parallel_for(10, 1, [&](std::int64_t, std::int64_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, OversizedChunkCoversRangeInOneClaim) {
  ThreadPool pool{2};
  std::atomic<int> chunks{0};
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(37, 1000, [&](std::int64_t begin, std::int64_t end) {
    chunks.fetch_add(1, std::memory_order_relaxed);
    covered.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 37);
}

}  // namespace
}  // namespace sic
