/// Ablation — multi-AP coordination (Section 4.1 operationalized): joint
/// association + SIC pairing versus strongest-AP association with per-cell
/// pairing, over random enterprise floors. Shows (a) the makespan win from
/// load-balancing orthogonal-channel cells and (b) the subtler co-channel
/// win from pairing-aware association (moving a client to a slightly
/// weaker AP can land it on the Fig. 4 ridge).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/enterprise.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sic;
  bench::header("Ablation — enterprise multi-AP coordination",
                "joint association + pairing vs strongest-AP association");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  constexpr int kTrials = 100;

  const auto run = [&](int n_aps, int n_clients, core::ChannelModel model,
                       bool skew) {
    Rng rng{91};
    double base_total = 0.0;
    double tuned_total = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<core::EnterpriseClient> clients;
      for (int c = 0; c < n_clients; ++c) {
        core::EnterpriseClient client;
        for (int a = 0; a < n_aps; ++a) {
          // Skewed floors put most clients near AP 0 (hotspot).
          const double bias = skew && a == 0 ? 4.0 : 0.0;
          client.rss_at_ap.push_back(
              Milliwatts{Decibels{rng.uniform(10.0, 32.0) + bias}.linear()});
        }
        clients.push_back(std::move(client));
      }
      core::EnterpriseOptions options;
      options.channel_model = model;
      base_total += core::strongest_ap_assignment(clients, n_aps, shannon,
                                                  options)
                        .objective;
      tuned_total += core::schedule_enterprise_upload(clients, n_aps, shannon,
                                                      options)
                         .objective;
    }
    return base_total / tuned_total;
  };

  std::printf("%-34s %-12s\n", "configuration", "coordination gain");
  std::printf("%-34s %-12.4f\n", "2 APs, 8 clients, orthogonal",
              run(2, 8, core::ChannelModel::kOrthogonal, false));
  std::printf("%-34s %-12.4f\n", "2 APs, 8 clients, orthogonal+skew",
              run(2, 8, core::ChannelModel::kOrthogonal, true));
  std::printf("%-34s %-12.4f\n", "3 APs, 12 clients, orthogonal",
              run(3, 12, core::ChannelModel::kOrthogonal, false));
  std::printf("%-34s %-12.4f\n", "2 APs, 8 clients, shared channel",
              run(2, 8, core::ChannelModel::kShared, false));
  std::printf("\n(gain = strongest-AP objective / coordinated objective; the "
              "orthogonal rows are makespan, the shared row is total "
              "airtime)\n");
  return 0;
}
