#include "core/wlan_scenarios.hpp"

#include <gtest/gtest.h>

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

TEST(WlanStudy, UploadPairMatchesCoreAlgebra) {
  const auto ewlan = topology::make_ewlan();
  const WlanStudy study{ewlan, kShannon};
  // Clients 2 and 3 upload to AP 0.
  const auto ctx = study.upload_pair(2, 3, 0);
  EXPECT_DOUBLE_EQ(study.upload_gain(2, 3, 0), realized_gain(ctx));
  EXPECT_GE(study.upload_gain(2, 3, 0), 1.0);
}

TEST(WlanStudy, DownloadUsesBetterApBaseline) {
  const auto ewlan = topology::make_ewlan();
  const WlanStudy study{ewlan, kShannon, 12000.0};
  const auto result = study.download_to(2, 0, 1);
  // Serial baseline = 2 packets through the better AP.
  const auto& client = ewlan.nodes[2];
  const auto better = study.better_ap(2, 0, 1);
  const double best_rate =
      kShannon
          .rate(ewlan.rss(ewlan.nodes[static_cast<std::size_t>(better)],
                          client) /
                ewlan.noise())
          .value();
  EXPECT_NEAR(result.serial_airtime, 2.0 * 12000.0 / best_rate, 1e-12);
  EXPECT_GE(result.gain, 1.0);
}

TEST(WlanStudy, BetterApIsOwnCellAp) {
  // EWLAN geometry: each client's own-cell AP is the stronger one.
  const auto ewlan = topology::make_ewlan(40.0, 12.0, /*seed=*/3);
  const WlanStudy study{ewlan, kShannon};
  EXPECT_EQ(study.better_ap(2, 0, 1), 0u);  // AP1's client
  EXPECT_EQ(study.better_ap(4, 0, 1), 1u);  // AP2's client
}

TEST(WlanStudy, FreeAssociationMakesSicUnneeded) {
  // Section 4.1's EWLAN argument: "transmission to the closest AP is
  // obviously a better alternative... hence SIC is not needed".
  const auto ewlan = topology::make_ewlan(40.0, 12.0, /*seed=*/3);
  const WlanStudy study{ewlan, kShannon};
  const auto report = study.upload_with_free_association(2, 4, 0, 1);
  EXPECT_EQ(report.ap_for_a, 0u);
  EXPECT_EQ(report.ap_for_b, 1u);
  EXPECT_FALSE(report.sic_needed);
  EXPECT_EQ(report.result.kase, CrossLinkCase::kCaptureBoth);
}

TEST(WlanStudy, ForcedFarApNeedsSic) {
  // Forcing a client through the far AP creates the Fig. 5b/c geometry.
  const auto ewlan = topology::make_ewlan(40.0, 12.0, /*seed=*/3);
  const WlanStudy study{ewlan, kShannon};
  // Client 2 (AP1's) transmits to AP2 while client 4 (AP2's) transmits to
  // AP1 — both cross links.
  const auto cross = study.concurrent_links(2, 1, 4, 0);
  EXPECT_NE(cross.kase, CrossLinkCase::kCaptureBoth);
}

TEST(WlanStudy, ResidentialAsymmetryViaStudy) {
  // The Section 4.2 result, expressed through the study API: AP1→C2 can be
  // concurrent with the neighbor's far link but not the near one.
  const auto home = topology::make_residential();
  const WlanStudy study{home, kShannon};
  const auto with_far = study.concurrent_links(0, 3, 1, 5);   // AP2→C4
  const auto with_near = study.concurrent_links(0, 3, 1, 4);  // AP2→C3
  EXPECT_TRUE(with_far.sic_feasible);
  EXPECT_FALSE(with_near.sic_feasible);
}

TEST(WlanStudy, UnknownNodeIdRejected) {
  const auto ewlan = topology::make_ewlan();
  const WlanStudy study{ewlan, kShannon};
  EXPECT_THROW((void)study.upload_gain(2, 3, 99), std::logic_error);
}

}  // namespace
}  // namespace sic::core
