#ifndef SICMAC_UTIL_UNITS_HPP
#define SICMAC_UTIL_UNITS_HPP

/// \file units.hpp
/// Strong types for the physical quantities used throughout the library:
/// linear power (milliwatts), logarithmic power (dBm), dimensionless ratios
/// in decibels, bandwidth (hertz) and bitrate (bits per second).
///
/// The paper (Table 1) mixes linear RSS values (S_j^i), noise (N_0) and
/// dB-domain reasoning ("twice in terms of SNR in dB"). Mixing the two
/// domains silently is the classic source of bugs in link-budget code, so
/// every quantity here is a distinct type and conversions are explicit.

#include <cmath>
#include <compare>
#include <limits>
#include <ostream>

namespace sic {

/// A dimensionless power ratio expressed in decibels (10*log10 of the
/// linear ratio). Used for SNR/SINR values and path-loss attenuation.
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double db) : db_(db) {}

  [[nodiscard]] constexpr double value() const { return db_; }

  /// Linear (unitless) ratio corresponding to this dB value.
  [[nodiscard]] double linear() const { return std::pow(10.0, db_ / 10.0); }

  /// Builds a Decibels value from a linear ratio. Non-positive ratios have
  /// no dB representation and map to -inf (an infinitely attenuated
  /// signal), which the completion-time algebra treats as "link off" —
  /// never NaN, so comparisons against it stay well ordered.
  [[nodiscard]] static Decibels from_linear(double ratio) {
    if (ratio <= 0.0) {
      return Decibels{-std::numeric_limits<double>::infinity()};
    }
    return Decibels{10.0 * std::log10(ratio)};
  }

  constexpr Decibels operator+(Decibels o) const { return Decibels{db_ + o.db_}; }
  constexpr Decibels operator-(Decibels o) const { return Decibels{db_ - o.db_}; }
  constexpr Decibels operator-() const { return Decibels{-db_}; }
  constexpr Decibels& operator+=(Decibels o) { db_ += o.db_; return *this; }
  constexpr Decibels& operator-=(Decibels o) { db_ -= o.db_; return *this; }
  constexpr Decibels operator*(double k) const { return Decibels{db_ * k}; }

  constexpr auto operator<=>(const Decibels&) const = default;

 private:
  double db_ = 0.0;
};

/// Linear power in milliwatts. All SINR arithmetic (the additive
/// interference terms of equations (1)-(4)) happens in this domain.
class Milliwatts {
 public:
  constexpr Milliwatts() = default;
  constexpr explicit Milliwatts(double mw) : mw_(mw) {}

  [[nodiscard]] constexpr double value() const { return mw_; }

  constexpr Milliwatts operator+(Milliwatts o) const { return Milliwatts{mw_ + o.mw_}; }
  constexpr Milliwatts operator-(Milliwatts o) const { return Milliwatts{mw_ - o.mw_}; }
  constexpr Milliwatts& operator+=(Milliwatts o) { mw_ += o.mw_; return *this; }
  constexpr Milliwatts operator*(double k) const { return Milliwatts{mw_ * k}; }

  /// Ratio of two linear powers (e.g. signal over noise) — dimensionless.
  [[nodiscard]] constexpr double operator/(Milliwatts o) const { return mw_ / o.mw_; }

  constexpr auto operator<=>(const Milliwatts&) const = default;

 private:
  double mw_ = 0.0;
};

/// Absolute power on the logarithmic scale referenced to 1 mW.
class Dbm {
 public:
  constexpr Dbm() = default;
  constexpr explicit Dbm(double dbm) : dbm_(dbm) {}

  [[nodiscard]] constexpr double value() const { return dbm_; }

  /// Attenuating (or amplifying) an absolute power by a dB ratio keeps it
  /// an absolute power.
  constexpr Dbm operator+(Decibels gain) const { return Dbm{dbm_ + gain.value()}; }
  constexpr Dbm operator-(Decibels loss) const { return Dbm{dbm_ - loss.value()}; }

  /// Difference of two absolute powers is a ratio.
  constexpr Decibels operator-(Dbm o) const { return Decibels{dbm_ - o.dbm_}; }

  [[nodiscard]] Milliwatts to_milliwatts() const {
    return Milliwatts{std::pow(10.0, dbm_ / 10.0)};
  }

  /// Non-positive powers map to -inf dBm (see Decibels::from_linear).
  [[nodiscard]] static Dbm from_milliwatts(Milliwatts p) {
    if (p.value() <= 0.0) {
      return Dbm{-std::numeric_limits<double>::infinity()};
    }
    return Dbm{10.0 * std::log10(p.value())};
  }

  constexpr auto operator<=>(const Dbm&) const = default;

 private:
  double dbm_ = 0.0;
};

/// Channel bandwidth in hertz.
class Hertz {
 public:
  constexpr Hertz() = default;
  constexpr explicit Hertz(double hz) : hz_(hz) {}
  [[nodiscard]] constexpr double value() const { return hz_; }
  constexpr auto operator<=>(const Hertz&) const = default;

 private:
  double hz_ = 0.0;
};

/// Commuted scalar products, so `0.5 * rss` reads as naturally as
/// `rss * 0.5` at call sites mixing scale factors and strong types.
constexpr Decibels operator*(double k, Decibels v) { return v * k; }
constexpr Milliwatts operator*(double k, Milliwatts v) { return v * k; }

constexpr Hertz megahertz(double mhz) { return Hertz{mhz * 1e6}; }

/// Bitrate in bits per second.
class BitsPerSecond {
 public:
  constexpr BitsPerSecond() = default;
  constexpr explicit BitsPerSecond(double bps) : bps_(bps) {}
  [[nodiscard]] constexpr double value() const { return bps_; }
  [[nodiscard]] constexpr double megabits() const { return bps_ / 1e6; }

  constexpr BitsPerSecond operator+(BitsPerSecond o) const {
    return BitsPerSecond{bps_ + o.bps_};
  }
  constexpr auto operator<=>(const BitsPerSecond&) const = default;

 private:
  double bps_ = 0.0;
};

constexpr BitsPerSecond megabits_per_second(double mbps) {
  return BitsPerSecond{mbps * 1e6};
}

/// Airtime of a payload of \p bits at \p rate, in seconds.
/// Returns +infinity when the rate is zero (undecodable link), which the
/// completion-time algebra of Section 3 relies on: an infeasible branch
/// never wins a min().
[[nodiscard]] double airtime_seconds(double bits, BitsPerSecond rate);

std::ostream& operator<<(std::ostream& os, Decibels v);
std::ostream& operator<<(std::ostream& os, Dbm v);
std::ostream& operator<<(std::ostream& os, Milliwatts v);
std::ostream& operator<<(std::ostream& os, BitsPerSecond v);

}  // namespace sic

#endif  // SICMAC_UTIL_UNITS_HPP
