#ifndef SICMAC_MATCHING_ORACLE_HPP
#define SICMAC_MATCHING_ORACLE_HPP

/// \file oracle.hpp
/// Exponential exact matchers used as ground truth in tests. Bitmask DP over
/// vertex subsets: O(2ⁿ·n) time, O(2ⁿ) space — practical to n ≈ 20.

#include <optional>

#include "matching/graph.hpp"

namespace sic::matching {

/// Minimum-weight perfect matching by subset DP. Requires even n.
/// The result's pairs are sorted by first vertex.
[[nodiscard]] Matching min_weight_perfect_matching_oracle(const CostMatrix& costs);

/// Maximum-weight matching (not necessarily perfect) by subset DP over the
/// given edge list; vertices may stay single. Returns the mate vector and
/// achieved weight.
struct OracleMatching {
  std::vector<int> mate;
  double total_weight = 0.0;
};
[[nodiscard]] OracleMatching max_weight_matching_oracle(
    int n, std::span<const WeightedEdge> edges, bool max_cardinality);

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_ORACLE_HPP
