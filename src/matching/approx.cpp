#include "matching/approx.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "matching/error.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::matching {

namespace {

/// Upper bound on full 2-opt sweeps. Each applied swap strictly lowers the
/// total, so the loop terminates on its own; the cap only bounds the
/// pathological worst case. In practice random instances converge in a
/// handful of passes.
constexpr std::uint64_t kMaxSwapPasses = 64;

/// Greedy seed over \p edges (which may be a thin, sparsified subset of the
/// complete graph), ascending-index fallback for vertices the thin graph
/// left unmatched, then the deterministic 2-opt postpass over the full
/// matrix. \p edges is consumed as heap scratch.
Matching approx_core(const CostMatrix& costs, std::vector<WeightedEdge>& edges,
                     ApproxMatchStats& stats) {
  const int n = costs.size();
  Matching out;
  if (n == 0) return out;

  // Greedy seed: identical heap-selection idiom and (weight, u, v)
  // tie-break as greedy_min_weight_perfect_matching, but tolerant of the
  // seed leaving vertices unmatched when the edge list is sparse.
  const auto later = [](const WeightedEdge& a, const WeightedEdge& b) {
    if (!bitwise_equal(a.weight, b.weight)) return a.weight > b.weight;
    if (a.u != b.u) return a.u > b.u;
    return a.v > b.v;
  };
  std::make_heap(edges.begin(), edges.end(), later);
  auto heap_end = edges.end();
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n) / 2);
  int matched = 0;
  while (matched < n && heap_end != edges.begin()) {
    std::pop_heap(edges.begin(), heap_end, later);
    const WeightedEdge& e = *--heap_end;
    if (used[static_cast<std::size_t>(e.u)] ||
        used[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    used[static_cast<std::size_t>(e.u)] = true;
    used[static_cast<std::size_t>(e.v)] = true;
    pairs.emplace_back(e.u, e.v);
    matched += 2;
  }

  // Dummy-edge fallback: pair the leftovers in ascending index order at
  // their matrix cost. Always legal (the matrix is complete) and always
  // even-sized (n and the matched count are both even).
  if (matched < n) {
    int prev = -1;
    for (int v = 0; v < n; ++v) {
      if (used[static_cast<std::size_t>(v)]) continue;
      if (prev == -1) {
        prev = v;
      } else {
        pairs.emplace_back(prev, v);
        ++stats.fallback_pairs;
        prev = -1;
      }
    }
  }

  // 2-opt local-swap postpass: for every pair of matched edges (a,b),(c,d)
  // try the two rewirings (a,c)(b,d) and (a,d)(b,c); apply the better one
  // when it strictly lowers the total. Fixed scan order and a strict-<
  // acceptance rule keep the pass deterministic; ties between the two
  // rewirings resolve to the (a,c)(b,d) form.
  bool improved = true;
  while (improved && stats.swap_passes < kMaxSwapPasses) {
    improved = false;
    ++stats.swap_passes;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      for (std::size_t j = i + 1; j < pairs.size(); ++j) {
        const auto [a, b] = pairs[i];
        const auto [c, d] = pairs[j];
        const double current = costs.at(a, b) + costs.at(c, d);
        const double cross1 = costs.at(a, c) + costs.at(b, d);
        const double cross2 = costs.at(a, d) + costs.at(b, c);
        if (cross1 < current && cross1 <= cross2) {
          pairs[i] = {a, c};
          pairs[j] = {b, d};
          improved = true;
          ++stats.swaps_applied;
        } else if (cross2 < current) {
          pairs[i] = {a, d};
          pairs[j] = {b, c};
          improved = true;
          ++stats.swaps_applied;
        }
      }
    }
  }

  // Canonical form: each pair (lo, hi), pairs sorted by first vertex, total
  // summed in that order — so equal matchings are bit-identical regardless
  // of the discovery order the seed and postpass happened to take.
  for (auto& p : pairs) {
    if (p.first > p.second) std::swap(p.first, p.second);
  }
  std::sort(pairs.begin(), pairs.end());
  out.pairs = std::move(pairs);
  for (const auto& [a, b] : out.pairs) out.total_cost += costs.at(a, b);
  return out;
}

void require_even(int n) {
  if (n % 2 != 0) {
    throw MatchingError(
        "approximate perfect matching requires an even vertex count, got "
        "n = " +
        std::to_string(n));
  }
}

void publish(const ApproxMatchStats& stats, int n) {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  reg->counter("matching.approx.kept_edges").inc(stats.kept_edges);
  reg->counter("matching.approx.dropped_edges").inc(stats.dropped_edges);
  reg->counter("matching.approx.fallback_pairs").inc(stats.fallback_pairs);
  reg->counter("matching.approx.swap_passes").inc(stats.swap_passes);
  reg->counter("matching.approx.swaps_applied").inc(stats.swaps_applied);
  reg->counter("matching.approx.vertices").inc(static_cast<std::uint64_t>(n));
}

}  // namespace

Matching approx_min_weight_perfect_matching(const CostMatrix& costs,
                                            ApproxMatchStats* stats) {
  const int n = costs.size();
  require_even(n);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("matching.approx.wall_s") : nullptr,
      reg != nullptr ? &reg->counter("matching.approx.calls") : nullptr};
  ApproxMatchStats local;
  std::vector<WeightedEdge> edges;
  costs.edges(edges);
  local.kept_edges = edges.size();
  Matching out = approx_core(costs, edges, local);
  publish(local, n);
  if (stats != nullptr) *stats = local;
  return out;
}

Matching approx_min_weight_perfect_matching(
    const CostMatrix& costs, std::span<const double> vertex_serial_cost,
    Decibels sparsify_margin, std::vector<WeightedEdge>& edge_scratch,
    ApproxMatchStats* stats) {
  const int n = costs.size();
  require_even(n);
  SIC_CHECK(static_cast<int>(vertex_serial_cost.size()) == n);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("matching.approx.wall_s") : nullptr,
      reg != nullptr ? &reg->counter("matching.approx.calls") : nullptr};
  ApproxMatchStats local;
  // Sparsification: keep {u, v} only when pairing beats serial by the
  // admission margin. The dummy vertex's serial cost is 0, so its edges
  // never survive and the fallback closes them.
  const double margin_linear = (-sparsify_margin).linear();
  edge_scratch.clear();
  edge_scratch.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double cost = costs.at(i, j);
      const double threshold =
          (vertex_serial_cost[static_cast<std::size_t>(i)] +
           vertex_serial_cost[static_cast<std::size_t>(j)]) *
          margin_linear;
      if (cost < threshold) {
        edge_scratch.push_back(WeightedEdge{i, j, cost});
        ++local.kept_edges;
      } else {
        ++local.dropped_edges;
      }
    }
  }
  Matching out = approx_core(costs, edge_scratch, local);
  publish(local, n);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace sic::matching
