#include "core/enterprise.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace sic::core {

namespace {

/// Builds the per-AP schedules for a fixed association and returns the
/// objective under the channel model.
struct Evaluated {
  std::vector<Schedule> cells;
  double objective = 0.0;
};

Evaluated evaluate_assignment(std::span<const EnterpriseClient> clients,
                              int n_aps, std::span<const int> ap_for_client,
                              const phy::RateAdapter& adapter,
                              const EnterpriseOptions& options) {
  Evaluated out;
  out.cells.resize(static_cast<std::size_t>(n_aps));
  double sum = 0.0;
  double makespan = 0.0;
  // The schedules index clients *within their cell*; remap afterwards so
  // slots refer to global client indices.
  for (int a = 0; a < n_aps; ++a) {
    std::vector<channel::LinkBudget> cell;
    std::vector<int> global_index;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (ap_for_client[c] == a) {
        cell.push_back(channel::LinkBudget{
            clients[c].rss_at_ap[static_cast<std::size_t>(a)],
            options.noise});
        global_index.push_back(static_cast<int>(c));
      }
    }
    Schedule schedule = schedule_upload(cell, adapter, options.cell);
    for (auto& slot : schedule.slots) {
      slot.first = global_index[static_cast<std::size_t>(slot.first)];
      if (slot.second >= 0) {
        slot.second = global_index[static_cast<std::size_t>(slot.second)];
      }
    }
    sum += schedule.total_airtime;
    makespan = std::max(makespan, schedule.total_airtime);
    out.cells[static_cast<std::size_t>(a)] = std::move(schedule);
  }
  out.objective =
      options.channel_model == ChannelModel::kShared ? sum : makespan;
  return out;
}

std::vector<int> strongest_ap(std::span<const EnterpriseClient> clients,
                              int n_aps) {
  std::vector<int> assignment;
  assignment.reserve(clients.size());
  for (const auto& client : clients) {
    SIC_CHECK_MSG(static_cast<int>(client.rss_at_ap.size()) == n_aps,
                  "client RSS vector must cover every AP");
    int best = 0;
    for (int a = 1; a < n_aps; ++a) {
      if (client.rss_at_ap[static_cast<std::size_t>(a)] >
          client.rss_at_ap[static_cast<std::size_t>(best)]) {
        best = a;
      }
    }
    assignment.push_back(best);
  }
  return assignment;
}

}  // namespace

EnterpriseAssignment strongest_ap_assignment(
    std::span<const EnterpriseClient> clients, int n_aps,
    const phy::RateAdapter& adapter, const EnterpriseOptions& options) {
  SIC_CHECK(n_aps >= 1);
  EnterpriseAssignment out;
  out.ap_for_client = strongest_ap(clients, n_aps);
  auto eval =
      evaluate_assignment(clients, n_aps, out.ap_for_client, adapter, options);
  out.cell_schedules = std::move(eval.cells);
  out.objective = eval.objective;
  return out;
}

EnterpriseAssignment schedule_enterprise_upload(
    std::span<const EnterpriseClient> clients, int n_aps,
    const phy::RateAdapter& adapter, const EnterpriseOptions& options) {
  SIC_CHECK(n_aps >= 1);
  SIC_CHECK(options.max_passes >= 0);
  std::vector<int> assignment = strongest_ap(clients, n_aps);
  auto best = evaluate_assignment(clients, n_aps, assignment, adapter, options);

  // Deterministic first-improvement local search over single-client moves.
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      const int original = assignment[c];
      for (int a = 0; a < n_aps; ++a) {
        if (a == original) continue;
        assignment[c] = a;
        auto cand =
            evaluate_assignment(clients, n_aps, assignment, adapter, options);
        if (cand.objective < best.objective * (1.0 - 1e-12)) {
          best = std::move(cand);
          improved = true;
          break;  // keep the move; re-scan from the next client
        }
        assignment[c] = original;
      }
    }
    if (!improved) break;
  }

  EnterpriseAssignment out;
  out.ap_for_client = std::move(assignment);
  out.cell_schedules = std::move(best.cells);
  out.objective = best.objective;
  return out;
}

}  // namespace sic::core
