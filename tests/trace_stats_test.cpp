#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace sic::trace {
namespace {

RssiTrace tiny_trace() {
  RssiTrace t;
  Snapshot s;
  s.timestamp_s = 0;
  s.aps.push_back(
      ApSnapshot{0, {{1, Dbm{-50.0}}, {2, Dbm{-60.0}}, {3, Dbm{-70.0}}}});
  s.aps.push_back(ApSnapshot{1, {{4, Dbm{-55.0}}}});
  s.aps.push_back(ApSnapshot{2, {}});
  t.snapshots.push_back(s);
  return t;
}

TEST(TraceStats, CountsAndMoments) {
  const auto stats = compute_trace_stats(tiny_trace());
  EXPECT_EQ(stats.snapshots, 1u);
  EXPECT_EQ(stats.observations, 4u);
  EXPECT_EQ(stats.max_clients_per_cell, 3);
  EXPECT_EQ(stats.cells_with_pairing_potential, 1u);
  // Two non-empty cells with 3 and 1 clients.
  EXPECT_DOUBLE_EQ(stats.mean_clients_per_cell, 2.0);
  EXPECT_NEAR(stats.rssi_mean.value(), (-50.0 - 60.0 - 70.0 - 55.0) / 4.0,
              1e-12);
}

TEST(TraceStats, PairwiseDisparities) {
  const auto stats = compute_trace_stats(tiny_trace());
  // Pairs within AP 0: |−50+60|=10, |−50+70|=20, |−60+70|=10.
  ASSERT_EQ(stats.pairwise_disparity.size(), 3u);
  double sum = 0.0;
  for (const Decibels d : stats.pairwise_disparity) sum += d.value();
  EXPECT_NEAR(sum, 40.0, 1e-12);
}

TEST(TraceStats, RidgeFraction) {
  // With noise at −70 dBm: weaker SNRs are 10 dB (−60) and 0 dB (−70).
  // Pair (−50, −60): disparity 10 == weaker SNR 10 ⇒ on ridge.
  // Pair (−50, −70): disparity 20 vs weaker SNR 0 ⇒ off.
  // Pair (−60, −70): disparity 10 vs weaker SNR 0 ⇒ off.
  const auto stats = compute_trace_stats(tiny_trace());
  EXPECT_NEAR(stats.ridge_fraction(Dbm{-70.0}, Decibels{1.0}), 1.0 / 3.0,
              1e-12);
  // A wide band catches everything.
  EXPECT_NEAR(stats.ridge_fraction(Dbm{-70.0}, Decibels{30.0}), 1.0, 1e-12);
}

TEST(TraceStats, EmptyTrace) {
  const auto stats = compute_trace_stats(RssiTrace{});
  EXPECT_EQ(stats.observations, 0u);
  EXPECT_DOUBLE_EQ(stats.ridge_fraction(Dbm{-94.0}), 0.0);
}

TEST(TraceStats, SyntheticBuildingCensus) {
  BuildingConfig config;
  config.duration_s = 12 * 3600;
  config.diurnal = false;
  const auto trace = generate_building_trace(config, 33);
  const auto stats = compute_trace_stats(trace);
  EXPECT_GT(stats.cells_with_pairing_potential, 50u);
  EXPECT_GT(stats.pairwise_disparity.size(), 100u);
  // Disparities have real spread (shadowing + geometry): several dB.
  double sum = 0.0;
  for (const Decibels d : stats.pairwise_disparity) sum += d.value();
  const double mean =
      sum / static_cast<double>(stats.pairwise_disparity.size());
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 30.0);
  // Some pairs land on the Fig. 4 ridge — the raw material of Fig. 13.
  const double ridge = stats.ridge_fraction(Dbm{-94.0}, Decibels{3.0});
  EXPECT_GT(ridge, 0.0);
  EXPECT_LT(ridge, 0.9);
}

}  // namespace
}  // namespace sic::trace
