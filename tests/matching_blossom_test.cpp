#include "matching/blossom.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "matching/error.hpp"
#include "matching/oracle.hpp"
#include "util/rng.hpp"

namespace sic::matching {
namespace {

double matching_weight(const std::vector<int>& mate,
                       std::span<const WeightedEdge> edges) {
  // Sum the best edge weight for each matched pair (parallel edges: max).
  double total = 0.0;
  for (int v = 0; v < static_cast<int>(mate.size()); ++v) {
    if (mate[v] <= v) continue;
    double best = -1e18;
    for (const auto& e : edges) {
      if ((e.u == v && e.v == mate[v]) || (e.v == v && e.u == mate[v])) {
        best = std::max(best, e.weight);
      }
    }
    EXPECT_GT(best, -1e17) << "matched pair has no edge";
    total += best;
  }
  return total;
}

int cardinality(const std::vector<int>& mate) {
  int c = 0;
  for (const int m : mate) {
    if (m != -1) ++c;
  }
  return c / 2;
}

TEST(Blossom, EmptyGraph) {
  EXPECT_TRUE(max_weight_matching(0, {}).empty());
  const auto mate = max_weight_matching(3, {});
  EXPECT_EQ(mate, (std::vector<int>{-1, -1, -1}));
}

TEST(Blossom, SingleEdge) {
  const WeightedEdge edges[] = {{0, 1, 1.0}};
  EXPECT_EQ(max_weight_matching(2, edges), (std::vector<int>{1, 0}));
}

TEST(Blossom, PathPrefersMiddleByWeight) {
  const WeightedEdge edges[] = {{0, 1, 2.0}, {1, 2, 5.0}, {2, 3, 2.0}};
  const auto mate = max_weight_matching(4, edges, false);
  EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, -1}));
}

TEST(Blossom, PathMaxCardinalityTakesOuterEdges) {
  const WeightedEdge edges[] = {{0, 1, 2.0}, {1, 2, 5.0}, {2, 3, 2.0}};
  const auto mate = max_weight_matching(4, edges, true);
  EXPECT_EQ(mate, (std::vector<int>{1, 0, 3, 2}));
}

TEST(Blossom, ClassicBlossomInstances) {
  // These exercise blossom creation/expansion (from van Rantwijk's suite).
  {
    // Create S-blossom and use it for augmentation.
    const WeightedEdge edges[] = {
        {1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}};
    const auto mate = max_weight_matching(5, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 4, 3}));
  }
  {
    const WeightedEdge edges[] = {
        {1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 5, 6}};
    const auto mate = max_weight_matching(7, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 5, 4, 1}));
  }
  {
    // Create S-blossom, relabel as T-blossom, use for augmentation.
    const WeightedEdge edges[] = {
        {1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3}};
    const auto mate = max_weight_matching(7, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 5, 4, 1}));
  }
  {
    const WeightedEdge edges[] = {
        {1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {3, 6, 4}};
    const auto mate = max_weight_matching(7, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 6, 5, 4, 3}));
  }
  {
    // Create nested S-blossom, use for augmentation.
    const WeightedEdge edges[] = {{1, 2, 9}, {1, 3, 9}, {2, 3, 10},
                                  {2, 4, 8}, {3, 5, 8}, {4, 5, 10},
                                  {5, 6, 6}};
    const auto mate = max_weight_matching(7, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 3, 4, 1, 2, 6, 5}));
  }
  {
    // Create nested S-blossom, augment, expand recursively.
    const WeightedEdge edges[] = {{1, 2, 8}, {1, 3, 8}, {2, 3, 10},
                                  {2, 4, 12}, {3, 5, 12}, {4, 5, 14},
                                  {4, 6, 12}, {5, 7, 12}, {6, 7, 14},
                                  {7, 8, 12}};
    const auto mate = max_weight_matching(9, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 5, 6, 3, 4, 8, 7}));
  }
  {
    // Create S-blossom, relabel as S, include in nested S-blossom.
    const WeightedEdge edges[] = {{1, 2, 10}, {1, 7, 10}, {2, 3, 12},
                                  {3, 4, 20}, {3, 5, 20}, {4, 5, 25},
                                  {5, 6, 10}, {6, 7, 10}, {7, 8, 8}};
    const auto mate = max_weight_matching(9, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 4, 3, 6, 5, 8, 7}));
  }
  {
    // Create blossom, relabel as T in more than one way, expand, augment.
    const WeightedEdge edges[] = {{1, 2, 45}, {1, 5, 45}, {2, 3, 50},
                                  {3, 4, 45}, {4, 5, 50}, {1, 6, 30},
                                  {3, 9, 35}, {4, 8, 35}, {5, 7, 26},
                                  {9, 10, 5}};
    const auto mate = max_weight_matching(11, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9}));
  }
  {
    // Again, with a different T-expansion.
    const WeightedEdge edges[] = {{1, 2, 45}, {1, 5, 45}, {2, 3, 50},
                                  {3, 4, 45}, {4, 5, 50}, {1, 6, 30},
                                  {3, 9, 35}, {4, 8, 26}, {5, 7, 40},
                                  {9, 10, 5}};
    const auto mate = max_weight_matching(11, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9}));
  }
  {
    // Create blossom, relabel as T, expand such that a new least-slack
    // S-to-free edge is produced, augment.
    const WeightedEdge edges[] = {{1, 2, 45}, {1, 5, 45}, {2, 3, 50},
                                  {3, 4, 45}, {4, 5, 50}, {1, 6, 30},
                                  {3, 9, 35}, {4, 8, 28}, {5, 7, 26},
                                  {9, 10, 5}};
    const auto mate = max_weight_matching(11, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9}));
  }
  {
    // Create nested blossom, relabel as T in more than one way, expand
    // outer blossom such that inner blossom ends up on an augmenting path.
    const WeightedEdge edges[] = {
        {1, 2, 45}, {1, 7, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 95},
        {4, 6, 94}, {5, 6, 94}, {6, 7, 50}, {1, 8, 30}, {3, 11, 35},
        {5, 9, 36}, {7, 10, 26}, {11, 12, 5}};
    const auto mate = max_weight_matching(13, edges);
    EXPECT_EQ(mate, (std::vector<int>{-1, 8, 3, 2, 6, 9, 4, 10, 1, 5, 7,
                                      12, 11}));
  }
}

TEST(Blossom, NegativeWeightsIgnoredUnlessMaxCardinality) {
  const WeightedEdge edges[] = {
      {1, 2, 2}, {1, 3, -2}, {2, 3, 1}, {2, 4, -1}, {3, 4, -6}};
  auto mate = max_weight_matching(5, edges, false);
  EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, -1, -1}));
  mate = max_weight_matching(5, edges, true);
  EXPECT_EQ(mate, (std::vector<int>{-1, 3, 4, 1, 2}));
}

/// Randomized cross-check against the exponential oracle, parameterized by
/// graph density.
class BlossomVsOracle : public ::testing::TestWithParam<double> {};

TEST_P(BlossomVsOracle, MaxWeightMatchesOracleWeight) {
  const double density = GetParam();
  Rng rng{static_cast<std::uint64_t>(density * 1000) + 5};
  for (int trial = 0; trial < 120; ++trial) {
    const int n = rng.uniform_int(2, 11);
    std::vector<WeightedEdge> edges;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.uniform(0.0, 1.0) < density) {
          edges.push_back(WeightedEdge{i, j, rng.uniform(0.0, 100.0)});
        }
      }
    }
    const auto mate = max_weight_matching(n, edges, false);
    ASSERT_TRUE(is_valid_mate_vector(mate));
    const auto oracle = max_weight_matching_oracle(n, edges, false);
    EXPECT_NEAR(matching_weight(mate, edges), oracle.total_weight, 1e-4)
        << "n=" << n << " edges=" << edges.size() << " trial=" << trial;
  }
}

TEST_P(BlossomVsOracle, MaxCardinalityMatchesOracle) {
  const double density = GetParam();
  Rng rng{static_cast<std::uint64_t>(density * 1000) + 99};
  for (int trial = 0; trial < 120; ++trial) {
    const int n = rng.uniform_int(2, 11);
    std::vector<WeightedEdge> edges;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.uniform(0.0, 1.0) < density) {
          edges.push_back(WeightedEdge{i, j, rng.uniform(-20.0, 100.0)});
        }
      }
    }
    const auto mate = max_weight_matching(n, edges, true);
    ASSERT_TRUE(is_valid_mate_vector(mate));
    const auto oracle = max_weight_matching_oracle(n, edges, true);
    EXPECT_EQ(cardinality(mate), cardinality(oracle.mate))
        << "n=" << n << " trial=" << trial;
    EXPECT_NEAR(matching_weight(mate, edges), oracle.total_weight, 1e-4)
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, BlossomVsOracle,
                         ::testing::Values(0.3, 0.6, 0.9, 1.0));

TEST(Blossom, IntegerWeightTiesMatchOracle) {
  // Small integer weights maximize duplicate-weight ties, the usual trap
  // for primal-dual implementations.
  Rng rng{2024};
  for (int trial = 0; trial < 200; ++trial) {
    const int n = rng.uniform_int(2, 10);
    std::vector<WeightedEdge> edges;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        edges.push_back(
            WeightedEdge{i, j, static_cast<double>(rng.uniform_int(0, 4))});
      }
    }
    const auto mate = max_weight_matching(n, edges, true);
    ASSERT_TRUE(is_valid_mate_vector(mate));
    const auto oracle = max_weight_matching_oracle(n, edges, true);
    EXPECT_NEAR(matching_weight(mate, edges), oracle.total_weight, 1e-6)
        << "n=" << n << " trial=" << trial;
  }
}

TEST(MinWeightPerfect, MatchesOracleOnRandomCompleteGraphs) {
  Rng rng{31337};
  for (int trial = 0; trial < 150; ++trial) {
    const int n = 2 * rng.uniform_int(1, 6);
    CostMatrix costs{n};
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        costs.set(i, j, rng.uniform(0.1, 50.0));
      }
    }
    const auto blossom = min_weight_perfect_matching(costs);
    const auto oracle = min_weight_perfect_matching_oracle(costs);
    EXPECT_NEAR(blossom.total_cost, oracle.total_cost, 1e-5)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(blossom.pairs.size(), static_cast<std::size_t>(n / 2));
  }
}

TEST(MinWeightPerfect, AntiGreedyInstance) {
  CostMatrix costs{4};
  costs.set(0, 1, 1.0);
  costs.set(2, 3, 100.0);
  costs.set(0, 2, 2.0);
  costs.set(1, 3, 2.0);
  costs.set(0, 3, 50.0);
  costs.set(1, 2, 50.0);
  const auto m = min_weight_perfect_matching(costs);
  EXPECT_NEAR(m.total_cost, 4.0, 1e-9);
}

TEST(MinWeightPerfect, LargerInstanceAgainstOracle) {
  Rng rng{8};
  constexpr int n = 14;
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(0.0, 1.0));
  }
  const auto blossom = min_weight_perfect_matching(costs);
  const auto oracle = min_weight_perfect_matching_oracle(costs);
  EXPECT_NEAR(blossom.total_cost, oracle.total_cost, 1e-6);
}

TEST(MinWeightPerfect, OddCountRejected) {
  CostMatrix costs{5};
  // Typed error (not the SIC_CHECK logic_error): the CLI maps it to its
  // own exit code, and the message names the offending count.
  try {
    (void)min_weight_perfect_matching(costs);
    FAIL() << "odd vertex count must throw MatchingError";
  } catch (const MatchingError& e) {
    EXPECT_NE(std::string{e.what()}.find("5"), std::string::npos);
  }
}

TEST(MinWeightPerfect, ScalesToHundredsOfVertices) {
  // Sanity (and a smoke test for the O(n³) claim): n = 120 completes and
  // produces a valid perfect matching no worse than greedy pairing.
  Rng rng{55};
  constexpr int n = 120;
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(1.0, 100.0));
  }
  const auto m = min_weight_perfect_matching(costs);
  EXPECT_EQ(m.pairs.size(), static_cast<std::size_t>(n / 2));
  std::vector<bool> seen(n, false);
  for (const auto& [a, b] : m.pairs) {
    EXPECT_FALSE(seen[a]);
    EXPECT_FALSE(seen[b]);
    seen[a] = seen[b] = true;
  }
}

}  // namespace
}  // namespace sic::matching
