// Chrome-trace sink format tests: JSON-array framing, one event per line,
// required Event Format keys, and arg value typing. A file that passes
// these checks loads in Perfetto / chrome://tracing (the closing bracket
// is optional per the format spec, which is what makes the stream
// crash-safe).

#include "obs/trace_sink.hpp"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sic::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

TEST(TraceSink, OpensJsonArrayImmediately) {
  std::ostringstream os;
  const TraceSink sink{os};
  EXPECT_EQ(os.str(), "[\n");
}

TEST(TraceSink, EventsAreOneJsonObjectPerLine) {
  std::ostringstream os;
  TraceSink sink{os};
  sink.complete("slot", 10.0, 250.5, 3, {{"mode", "sic"}, {"first", "2"}});
  sink.instant("drop", 300.0, 1);
  sink.begin("round", 0.0, 5);
  sink.end("round", 400.0, 5);
  sink.flush();
  EXPECT_EQ(sink.events_written(), 4u);

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "[");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // Every event is a complete object with a trailing comma, so appending
    // "{}]" at any truncation point yields valid JSON.
    EXPECT_EQ(lines[i].front(), '{') << lines[i];
    EXPECT_EQ(lines[i].substr(lines[i].size() - 2), "},") << lines[i];
  }
}

TEST(TraceSink, CompleteEventHasEventFormatKeys) {
  std::ostringstream os;
  TraceSink sink{os};
  sink.complete("data", 12.5, 100.0, 2, {{"dst", "0"}, {"verdict", "sic"}});
  const std::string line = lines_of(os.str()).at(1);
  EXPECT_NE(line.find("\"name\":\"data\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ph\":\"X\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":12.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"dur\":100"), std::string::npos) << line;
  EXPECT_NE(line.find("\"pid\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"tid\":2"), std::string::npos) << line;
  // Numeric-looking arg values are emitted as JSON numbers, strings as
  // escaped strings.
  EXPECT_NE(line.find("\"dst\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"verdict\":\"sic\""), std::string::npos) << line;
}

TEST(TraceSink, InstantEventIsThreadScoped) {
  std::ostringstream os;
  TraceSink sink{os};
  sink.instant("rate_miss", 55.0, 4);
  const std::string line = lines_of(os.str()).at(1);
  EXPECT_NE(line.find("\"ph\":\"i\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"s\":\"t\""), std::string::npos) << line;
}

TEST(TraceSink, NameTrackEmitsThreadNameMetadata) {
  std::ostringstream os;
  TraceSink sink{os};
  sink.name_track(3, "client 2");
  const std::string line = lines_of(os.str()).at(1);
  EXPECT_NE(line.find("\"name\":\"thread_name\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ph\":\"M\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"tid\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"client 2\""), std::string::npos) << line;
}

TEST(TraceSink, EscapesStringsInNamesAndArgs) {
  std::ostringstream os;
  TraceSink sink{os};
  sink.instant("say \"hi\"", 1.0, 0, {{"why", "tab\there\\done"}});
  const std::string line = lines_of(os.str()).at(1);
  EXPECT_NE(line.find("say \\\"hi\\\""), std::string::npos) << line;
  // Control characters become \u escapes, backslashes double.
  EXPECT_NE(line.find("tab\\u0009here\\\\done"), std::string::npos) << line;
}

TEST(TraceSink, NonNumericStringsStayStrings) {
  std::ostringstream os;
  TraceSink sink{os};
  // "1e" and "0x10" are not plain JSON numbers; "-2.5e3" is.
  sink.instant("x", 0.0, 0, {{"a", "1e"}, {"b", "0x10"}, {"c", "-2.5e3"}});
  const std::string line = lines_of(os.str()).at(1);
  EXPECT_NE(line.find("\"a\":\"1e\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"b\":\"0x10\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"c\":-2.5e3"), std::string::npos) << line;
}

TEST(TraceSink, GlobalAttachPointRoundTrips) {
  ASSERT_EQ(trace(), nullptr);
  std::ostringstream os;
  TraceSink sink{os};
  EXPECT_EQ(set_trace(&sink), nullptr);
  EXPECT_EQ(trace(), &sink);
  EXPECT_EQ(set_trace(nullptr), &sink);
  EXPECT_EQ(trace(), nullptr);
}

}  // namespace
}  // namespace sic::obs
