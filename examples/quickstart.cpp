/// Quickstart: the two-clients-one-AP building block in ten lines of API.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/power_control.hpp"
#include "core/upload_pair.hpp"
#include "phy/capacity.hpp"

int main() {
  using namespace sic;

  // Two clients heard at the AP at 24 dB and 12 dB SNR (the Fig. 4 ridge),
  // ideal (Shannon) rate adaptation over a 20 MHz channel.
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  const auto ctx = core::UploadPairContext::make(
      Milliwatts{Decibels{24.0}.linear()},   // stronger client RSS
      Milliwatts{Decibels{12.0}.linear()},   // weaker client RSS
      Milliwatts{1.0},                       // noise floor (normalized)
      adapter,
      /*packet_bits=*/12000.0);              // one 1500-byte frame each

  // What rates can they use simultaneously? (paper eq. 1 and 2)
  const auto rates = core::sic_rates(ctx);
  std::printf("concurrent rates: stronger %.1f Mbps, weaker %.1f Mbps\n",
              rates.stronger.megabits(), rates.weaker.megabits());

  // How long to deliver both packets, serially vs concurrently with SIC?
  std::printf("serial (eq 5):     %.1f us\n", 1e6 * core::serial_airtime(ctx));
  std::printf("SIC    (eq 6):     %.1f us\n", 1e6 * core::sic_airtime(ctx));
  std::printf("gain Z-/Z+:        %.2fx\n", core::sic_gain(ctx));

  // Section 5.2: can reducing the weaker client's power help this pair?
  const auto pc = core::optimize_weaker_power(ctx);
  std::printf("power control:     %s (scale %.2f, %.1f us)\n",
              pc.applied ? "applied" : "not useful", pc.scale,
              1e6 * pc.airtime);

  // The Section 2.3 capacity view of the same pair.
  std::printf("capacity gain (eq 4 / eq 3): %.3fx\n",
              phy::capacity_gain(megahertz(20.0), ctx.arrival));
  return 0;
}
