#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sic::trace {

void write_csv(const RssiTrace& trace, std::ostream& os) {
  os << "timestamp_s,ap_id,client_id,rssi_dbm\n";
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      for (const auto& obs : ap.clients) {
        os << snap.timestamp_s << ',' << ap.ap_id << ',' << obs.client_id
           << ',' << obs.rssi_dbm << '\n';
      }
    }
  }
}

void write_csv_file(const RssiTrace& trace, const std::string& path) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error("cannot open trace file for write: " + path);
  write_csv(trace, os);
}

RssiTrace read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("trace CSV is empty");
  }
  if (line != "timestamp_s,ap_id,client_id,rssi_dbm") {
    throw std::runtime_error("unexpected trace CSV header: " + line);
  }
  // timestamp -> ap -> observations
  std::map<std::int64_t, std::map<std::uint32_t, std::vector<ClientObservation>>>
      rows;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls{line};
    std::int64_t ts = 0;
    std::uint32_t ap = 0;
    std::uint32_t client = 0;
    double rssi = 0.0;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(ls >> ts >> c1 >> ap >> c2 >> client >> c3 >> rssi) || c1 != ',' ||
        c2 != ',' || c3 != ',') {
      throw std::runtime_error("malformed trace CSV at line " +
                               std::to_string(lineno) + ": " + line);
    }
    rows[ts][ap].push_back(ClientObservation{client, rssi});
  }
  RssiTrace trace;
  for (auto& [ts, aps] : rows) {
    Snapshot snap;
    snap.timestamp_s = ts;
    for (auto& [ap_id, clients] : aps) {
      ApSnapshot ap_snap;
      ap_snap.ap_id = ap_id;
      ap_snap.clients = std::move(clients);
      snap.aps.push_back(std::move(ap_snap));
    }
    trace.snapshots.push_back(std::move(snap));
  }
  return trace;
}

RssiTrace read_csv_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error("cannot open trace file for read: " + path);
  return read_csv(is);
}

}  // namespace sic::trace
