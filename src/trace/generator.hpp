#ifndef SICMAC_TRACE_GENERATOR_HPP
#define SICMAC_TRACE_GENERATOR_HPP

/// \file generator.hpp
/// Synthetic building-trace generator standing in for the paper's two-week
/// Duke RSSI traces (DESIGN.md, substitution 1). The model:
///
///  - APs on a grid across a rectangular floor.
///  - A fixed population of clients, each with a "home" location; per
///    snapshot a client is present with a duty-cycle probability, jitters
///    around home (people move), and associates with the strongest AP.
///  - RSSI at the AP = tx power − log-distance path loss + log-normal
///    shadowing, re-drawn per snapshot (temporal fading).
///
/// The statistic that drives Fig. 13 — the distribution of pairwise RSS
/// disparities among clients backlogged at the same AP — is shaped by the
/// same geometry + shadowing process as the real trace.

#include <cstdint>

#include "trace/snapshot.hpp"
#include "util/units.hpp"

namespace sic::trace {

struct BuildingConfig {
  int ap_grid_x = 3;                ///< APs per row
  int ap_grid_y = 2;                ///< AP rows
  double ap_spacing_m = 30.0;
  double floor_margin_m = 10.0;     ///< clients may roam this far past APs
  int client_population = 40;
  double presence_probability = 0.6;
  double roam_radius_m = 8.0;       ///< per-snapshot jitter around home
  double pathloss_exponent = 3.5;
  Decibels shadowing_sigma{6.0};
  Dbm client_tx_power{18.0};
  Dbm association_floor{-85.0};  ///< weaker clients are not heard

  int snapshot_period_s = 900;      ///< 15 minutes, as in the paper
  int duration_s = 14 * 24 * 3600;  ///< two weeks, as in the paper

  /// Office-building diurnal load: when true, the presence probability is
  /// modulated by hour-of-day and day-of-week (busy 9-18h on weekdays,
  /// nearly empty nights and weekends) — the occupancy pattern a "busy
  /// building in Duke University" trace exhibits. When false, presence is
  /// stationary at presence_probability.
  bool diurnal = true;
};

/// The presence multiplier the generator applies at a given trace time
/// (exposed for tests): 1.0 at the weekday peak, ~0.05 at night, ~0.25 on
/// weekend days. The trace starts on a Monday at midnight.
[[nodiscard]] double diurnal_presence_factor(int timestamp_s);

/// Generates the full trace for the given building and seed.
[[nodiscard]] RssiTrace generate_building_trace(const BuildingConfig& config,
                                                std::uint64_t seed);

}  // namespace sic::trace

#endif  // SICMAC_TRACE_GENERATOR_HPP
