#include "util/units.hpp"

#include <limits>

namespace sic {

double airtime_seconds(double bits, BitsPerSecond rate) {
  if (rate.value() <= 0.0) return std::numeric_limits<double>::infinity();
  return bits / rate.value();
}

std::ostream& operator<<(std::ostream& os, Decibels v) {
  return os << v.value() << " dB";
}

std::ostream& operator<<(std::ostream& os, Dbm v) {
  return os << v.value() << " dBm";
}

std::ostream& operator<<(std::ostream& os, Milliwatts v) {
  return os << v.value() << " mW";
}

std::ostream& operator<<(std::ostream& os, BitsPerSecond v) {
  return os << v.megabits() << " Mbps";
}

}  // namespace sic
