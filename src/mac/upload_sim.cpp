#include "mac/upload_sim.hpp"

#include <algorithm>
#include <memory>

#include <string>

#include "core/multirate.hpp"
#include "core/pair_cost_engine.hpp"
#include "core/power_control.hpp"
#include "mac/access_point.hpp"
#include "mac/station.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::mac {

namespace {

constexpr MacNodeId kApId = 0;

/// Folds one run's medium counters into the attached registry (no-op when
/// detached). Called once per run — the hot path never touches obs.
void publish_medium_stats(obs::MetricsRegistry& reg, const MediumStats& s) {
  reg.counter("mac.medium.transmissions").inc(s.transmissions);
  reg.counter("mac.medium.delivered").inc(s.delivered);
  reg.counter("mac.medium.failed_clean").inc(s.failed_clean);
  reg.counter("mac.medium.failed_collision").inc(s.failed_collision);
  reg.counter("mac.medium.sic_decodes").inc(s.sic_decodes);
  reg.counter("mac.medium.capture_decodes").inc(s.capture_decodes);
  reg.counter("mac.medium.injected_failures").inc(s.injected_failures);
}

/// The FailureTelemetry struct stays the per-run snapshot view (PR 1's
/// tests read it); the registry carries the same counters accumulated
/// across runs, under mac.upload.*.
void publish_failure_telemetry(obs::MetricsRegistry& reg,
                               const FailureTelemetry& t) {
  reg.counter("mac.upload.rate_misses").inc(t.rate_misses);
  reg.counter("mac.upload.cancellation_failures").inc(t.cancellation_failures);
  reg.counter("mac.upload.ack_losses").inc(t.ack_losses);
  reg.counter("mac.upload.duplicate_deliveries").inc(t.duplicate_deliveries);
  reg.counter("mac.upload.retransmissions").inc(t.retransmissions);
  reg.counter("mac.upload.mode_demotions").inc(t.mode_demotions);
  reg.counter("mac.upload.client_demotions").inc(t.client_demotions);
  reg.counter("mac.upload.rematch_rounds").inc(t.rematch_rounds);
  reg.counter("mac.upload.recovered").inc(t.recovered);
  reg.counter("mac.upload.unrecovered").inc(t.unrecovered);
  reg.counter("mac.upload.gave_up.rate_miss").inc(t.gave_up_rate_miss);
  reg.counter("mac.upload.gave_up.cancellation").inc(t.gave_up_cancellation);
  reg.counter("mac.upload.gave_up.ack_loss").inc(t.gave_up_ack_loss);
  reg.counter("mac.upload.gave_up.unattempted").inc(t.gave_up_unattempted);
  auto& retries = reg.histogram("mac.upload.retries_to_confirm", 1.0, 16);
  for (std::size_t k = 0; k < t.retry_histogram.size(); ++k) {
    for (std::uint64_t i = 0; i < t.retry_histogram[k]; ++i) {
      retries.observe(static_cast<double>(k));
    }
  }
}

/// Labels the per-node trace tracks once per run so the Perfetto timeline
/// reads "client 3", not "tid 4". \p executor_tid hosts round/slot spans.
void name_trace_tracks(obs::TraceSink& sink, std::size_t n_clients,
                       int executor_tid) {
  sink.name_track(kApId, "AP");
  for (std::size_t i = 0; i < n_clients; ++i) {
    sink.name_track(static_cast<int>(i) + 1,
                    "client " + std::to_string(i));
  }
  if (executor_tid >= 0) sink.name_track(executor_tid, "executor");
}

/// Builds the medium for one AP + n clients from their AP-side budgets.
/// Client-to-client gains come from the configured mutual SNR.
std::unique_ptr<Medium> build_medium(EventQueue& queue,
                                     std::span<const channel::LinkBudget> clients,
                                     const phy::RateAdapter& adapter,
                                     const UploadSimConfig& config) {
  SIC_CHECK(!clients.empty());
  const Milliwatts noise = clients.front().noise;
  for (const auto& c : clients) {
    SIC_CHECK_MSG(c.noise == noise, "clients must share the AP noise floor");
  }
  const int n_nodes = static_cast<int>(clients.size()) + 1;
  phy::SicDecoderConfig decoder;
  decoder.sic_capable = config.sic_at_ap;
  decoder.cancellation_residual = config.cancellation_residual;
  decoder.max_decodable_disparity = config.max_decodable_disparity;
  auto medium =
      std::make_unique<Medium>(queue, n_nodes, noise, adapter, decoder);
  const Milliwatts mutual = noise * config.client_mutual_snr.linear();
  for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
    medium->set_gain(kApId, i + 1, clients[static_cast<std::size_t>(i)].rss);
    for (int j = i + 1; j < static_cast<int>(clients.size()); ++j) {
      medium->set_gain(i + 1, j + 1, mutual);
    }
  }
  return medium;
}

}  // namespace

UploadSimResult run_dcf_upload(std::span<const channel::LinkBudget> clients,
                               const phy::RateAdapter& adapter,
                               const UploadSimConfig& config) {
  SIC_CHECK(config.frames_per_client >= 1);
  SIC_CHECK(config.rate_margin > 0.0 && config.rate_margin <= 1.0);
  EventQueue queue;
  auto medium = build_medium(queue, clients, adapter, config);
  AccessPoint ap{queue, *medium, kApId};
  Rng rng{config.seed};
  if (obs::TraceSink* sink = obs::trace()) {
    name_trace_tracks(*sink, clients.size(), /*executor_tid=*/-1);
  }

  std::vector<std::unique_ptr<DcfStation>> stations;
  for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
    const auto& budget = clients[static_cast<std::size_t>(i)];
    const BitsPerSecond rate{adapter.rate(budget.snr()).value() *
                             config.rate_margin};
    if (rate.value() <= 0.0) continue;  // dead link; cannot participate
    auto st = std::make_unique<DcfStation>(queue, *medium, i + 1, kApId, rate,
                                           rng.fork());
    st->set_rts_cts(config.use_rts_cts);
    st->enqueue(config.frames_per_client, config.packet_bits);
    st->start();
    stations.push_back(std::move(st));
  }

  queue.run_until(config.horizon);

  UploadSimResult result;
  result.offered =
      stations.size() * static_cast<std::uint64_t>(config.frames_per_client);
  result.delivered = ap.stats().data_received;
  SimTime completion = 0;
  for (const auto& st : stations) {
    result.retries += st->stats().retries;
    result.drops += st->stats().drops;
    completion = std::max(completion, st->stats().completion_time);
  }
  result.completion_s = to_seconds(completion);
  result.medium = medium->stats();
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("mac.dcf.runs").inc();
    reg->counter("mac.dcf.offered").inc(result.offered);
    reg->counter("mac.dcf.delivered").inc(result.delivered);
    reg->counter("mac.dcf.retries").inc(result.retries);
    reg->counter("mac.dcf.drops").inc(result.drops);
    reg->histogram("mac.dcf.completion_s").observe(result.completion_s);
    publish_medium_stats(*reg, result.medium);
  }
  SIC_LOG_INFO("dcf upload: %zu clients, %llu/%llu delivered in %.3f s",
               clients.size(),
               static_cast<unsigned long long>(result.delivered),
               static_cast<unsigned long long>(result.offered),
               result.completion_s);
  return result;
}

namespace {

/// Closed-loop executor of a Section 6 schedule. Each slot transmits
/// exactly as the open-loop runner did; the slot's completion event then
/// confirms every participating frame against the AP's receive counters
/// and drives the recovery ladder of RecoveryConfig. With no injected
/// faults every confirmation succeeds on the first attempt and the event
/// timeline (hence every result field) is identical to the open-loop
/// executor this replaced.
class ClosedLoopRunner {
 public:
  ClosedLoopRunner(EventQueue& queue, Medium& medium, AccessPoint& ap,
                   std::span<const channel::LinkBudget> clients,
                   const phy::RateAdapter& adapter,
                   const core::Schedule& schedule,
                   const UploadSimConfig& config, FaultModel& faults)
      : queue_(&queue),
        medium_(&medium),
        ap_(&ap),
        clients_(clients),
        adapter_(&adapter),
        config_(&config),
        faults_(&faults),
        margin_db_(schedule.admission_margin_db.value()),
        noise_(clients.front().noise),
        sink_(obs::trace()),
        executor_tid_(static_cast<int>(clients.size()) + 1) {
    const std::size_t n = clients.size();
    estimates_.reserve(n);
    for (const auto& c : clients_) estimates_.push_back(c.rss);
    pending_.assign(n, 0);
    attempts_.assign(n, 0);
    failures_.assign(n, 0);
    dropped_.assign(n, false);
    demoted_.assign(n, false);
    ap_seen_.assign(n, 0);
    last_cause_.assign(n, FailCause::kNone);
    unrecovered_per_client_.assign(n, 0);
    const int buckets =
        std::clamp(config.recovery.max_attempts_per_frame, 1, 16);
    telemetry_.retry_histogram.assign(static_cast<std::size_t>(buckets), 0);
    for (const auto& slot : schedule.slots) {
      RunSlot rs;
      rs.first = slot.first;
      rs.second = slot.second;
      rs.mode = slot.second < 0 ? core::PairMode::kSolo : slot.plan.mode;
      rs.planned_weaker_scale = slot.plan.weaker_power_scale;
      rs.use_planned_scale = true;
      ++pending_[static_cast<std::size_t>(slot.first)];
      if (slot.second >= 0) ++pending_[static_cast<std::size_t>(slot.second)];
      round_slots_.push_back(rs);
    }
  }

  void start() {
    round_open_ = true;
    round_start_us_ = now_us();
    run_slot(0);
  }

  /// Accounts frames still pending when the horizon cut the run short.
  void finalize() {
    close_round_span("horizon");
    for (std::size_t c = 0; c < pending_.size(); ++c) {
      if (pending_[c] > 0 && !dropped_[c]) give_up(c);
    }
  }

  [[nodiscard]] const FailureTelemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] const std::vector<std::uint64_t>& unrecovered_per_client()
      const {
    return unrecovered_per_client_;
  }

 private:
  struct RunSlot {
    int first = 0;
    int second = -1;  ///< -1 = solo
    core::PairMode mode = core::PairMode::kSolo;
    /// Weaker-client power scale from the planner; retry slots recompute
    /// it from the current estimates instead.
    double planned_weaker_scale = 1.0;
    bool use_planned_scale = false;
  };

  enum class CheckOutcome { kConfirmed, kFailed, kDropped };

  /// Cause of a client's most recent failed confirmation — the terminal
  /// cause attributed when the executor abandons that client's frames.
  enum class FailCause { kNone, kRateMiss, kCancellation, kAckLoss };

  /// Abandons every pending frame of client \p c, splitting the loss by
  /// the last observed failure cause (kNone = never checked: horizon).
  void give_up(std::size_t c) {
    const auto count = static_cast<std::uint64_t>(pending_[c]);
    telemetry_.unrecovered += count;
    unrecovered_per_client_[c] += count;
    switch (last_cause_[c]) {
      case FailCause::kRateMiss: telemetry_.gave_up_rate_miss += count; break;
      case FailCause::kCancellation:
        telemetry_.gave_up_cancellation += count;
        break;
      case FailCause::kAckLoss: telemetry_.gave_up_ack_loss += count; break;
      case FailCause::kNone: telemetry_.gave_up_unattempted += count; break;
    }
    pending_[c] = 0;
  }

  [[nodiscard]] static std::uint64_t frame_id(int client) {
    // Stable per-client ids: a retransmission carries the same id as the
    // original (as an 802.11 retry keeps its sequence number), which lets
    // the AP count duplicate deliveries.
    return static_cast<std::uint64_t>(client) + 1;
  }

  /// RSS the executor *selects rates from*: the current estimate, derated
  /// by the plan's admission margin plus the client's retry backoff.
  /// Transmissions still leave at full (or planner-scaled) power.
  [[nodiscard]] Milliwatts selection_rss(int client) const {
    const std::size_t c = static_cast<std::size_t>(client);
    const double backoff_db =
        margin_db_ +
        failures_[c] * config_->recovery.retry_backoff.value();
    return estimates_[c] * Decibels{-backoff_db}.linear();
  }

  [[nodiscard]] BitsPerSecond clean_rate(int client) const {
    return adapter_->rate(selection_rss(client) / noise_);
  }

  [[nodiscard]] core::UploadPairContext pair_ctx(int a, int b) const {
    return core::UploadPairContext::make(selection_rss(a), selection_rss(b),
                                         noise_, *adapter_,
                                         config_->packet_bits);
  }

  /// Transmits one data frame; zero-rate links (a discrete adapter below
  /// its lowest threshold) skip the air entirely and fail at confirmation.
  SimTime send(int client, BitsPerSecond rate, double scale,
               double bits, bool final_fragment) {
    if (rate.value() <= 0.0) return 0;
    Frame f;
    f.id = frame_id(client);
    f.type = FrameType::kData;
    f.src = client + 1;
    f.dst = kApId;
    f.payload_bits = bits;
    f.final_fragment = final_fragment;
    medium_->transmit(f, rate, scale);
    return medium_->frame_duration(f, rate);
  }

  void note_attempt(int client) {
    const std::size_t c = static_cast<std::size_t>(client);
    ++attempts_[c];
    if (attempts_[c] > 1) ++telemetry_.retransmissions;
  }

  void run_slot(std::size_t index) {
    if (index >= round_slots_.size()) {
      end_round();
      return;
    }
    slot_start_us_ = now_us();
    // Copy: retry slots appended below may reallocate round_slots_.
    const RunSlot slot = round_slots_[index];
    const PhyParams& phy = medium_->phy();
    const double bits = config_->packet_bits;
    SimTime span = 0;

    note_attempt(slot.first);
    if (slot.second >= 0) note_attempt(slot.second);

    int acks = 1;
    switch (slot.mode) {
      case core::PairMode::kSolo:
        span = send(slot.first, clean_rate(slot.first), 1.0, bits, true);
        break;
      case core::PairMode::kSerial: {
        // First packet now; the second after the first's ACK turnaround.
        const SimTime t1 =
            send(slot.first, clean_rate(slot.first), 1.0, bits, true);
        const SimTime gap = t1 + phy.sifs + phy.ack_duration() + phy.sifs;
        const int second = slot.second;
        queue_->schedule_after(gap, [this, second, index, bits] {
          const SimTime t2 =
              send(second, clean_rate(second), 1.0, bits, true);
          const PhyParams& p = medium_->phy();
          queue_->schedule_after(t2 + p.sifs + p.ack_duration() + p.sifs,
                                 [this, index] { finish_slot(index); });
        });
        return;  // continuation handles the slot completion
      }
      case core::PairMode::kSicMultirate: {
        SIC_CHECK(slot.second >= 0);
        const auto [strong, weak] = strong_weak(slot);
        const auto ctx = pair_ctx(slot.first, slot.second);
        const auto mr = core::multirate_airtime_detailed(ctx);
        if (!mr.boosted) {
          // Nothing to boost; run as a plain SIC pair.
          const auto rates = core::sic_rates(ctx);
          const SimTime ts = send(strong, rates.stronger, 1.0, bits, true);
          const SimTime tw = send(weak, rates.weaker, 1.0, bits, true);
          span = std::max(ts, tw);
          acks = 2;
          break;
        }
        // Fragment 1 of the stronger packet rides the overlap at the
        // interference-limited rate; the weaker packet runs in full.
        const auto rates = core::sic_rates(ctx);
        SimTime overlap_span = send(weak, rates.weaker, 1.0, bits, true);
        if (mr.overlap_bits > 0.0) {
          overlap_span = std::max(
              overlap_span,
              send(strong, rates.stronger, 1.0, mr.overlap_bits, false));
        }
        // After the overlap and the weaker packet's ACK turnaround, the
        // stronger client boosts the remainder to its clean rate.
        const double remaining = std::max(0.0, bits - mr.overlap_bits);
        const SimTime gap =
            overlap_span + phy.sifs + phy.ack_duration() + phy.sifs;
        queue_->schedule_after(gap, [this, strong, remaining, index] {
          const SimTime t_tail =
              send(strong, clean_rate(strong), 1.0, remaining, true);
          const PhyParams& p = medium_->phy();
          queue_->schedule_after(t_tail + p.sifs + p.ack_duration() + p.sifs,
                                 [this, index] { finish_slot(index); });
        });
        return;  // continuation handles the slot completion
      }
      case core::PairMode::kSic:
      case core::PairMode::kSicPowerControl: {
        SIC_CHECK(slot.second >= 0);
        const auto [strong, weak] = strong_weak(slot);
        auto ctx = pair_ctx(slot.first, slot.second);
        double scale = 1.0;
        if (slot.mode == core::PairMode::kSicPowerControl) {
          scale = slot.use_planned_scale
                      ? slot.planned_weaker_scale
                      : core::optimize_weaker_power(ctx).scale;
        }
        ctx.arrival.weaker = ctx.arrival.weaker * scale;
        const auto rates = core::sic_rates(ctx);
        const SimTime ts = send(strong, rates.stronger, 1.0, bits, true);
        const SimTime tw = send(weak, rates.weaker, scale, bits, true);
        span = std::max(ts, tw);
        acks = 2;
        break;
      }
    }
    const SimTime turnaround =
        span + phy.sifs + acks * (phy.ack_duration() + phy.sifs);
    queue_->schedule_after(turnaround, [this, index] { finish_slot(index); });
  }

  /// Stronger/weaker roles from the executor's *estimates* — under stale
  /// RSS the realized ordering may differ, which is itself a failure mode.
  [[nodiscard]] std::pair<int, int> strong_weak(const RunSlot& slot) const {
    const bool first_stronger =
        estimates_[static_cast<std::size_t>(slot.first)] >=
        estimates_[static_cast<std::size_t>(slot.second)];
    return first_stronger ? std::pair{slot.first, slot.second}
                          : std::pair{slot.second, slot.first};
  }

  /// Confirmation + recovery at the instant the open-loop runner would
  /// have blindly moved on.
  void finish_slot(std::size_t index) {
    const RunSlot slot = round_slots_[index];
    const CheckOutcome first = check_client(slot.first);
    const CheckOutcome second =
        slot.second >= 0 ? check_client(slot.second) : CheckOutcome::kConfirmed;
    faults_->clear_injections();
    if (sink_ != nullptr) {
      obs::TraceSink::Args args{
          {"mode", core::to_string(slot.mode)},
          {"first", std::to_string(slot.first)},
          {"first_ok", first == CheckOutcome::kConfirmed ? "1" : "0"},
      };
      if (slot.second >= 0) {
        args.emplace_back("second", std::to_string(slot.second));
        args.emplace_back("second_ok",
                          second == CheckOutcome::kConfirmed ? "1" : "0");
      }
      sink_->complete("slot", slot_start_us_, now_us() - slot_start_us_,
                      executor_tid_, args);
    }

    if (config_->recovery.enabled) {
      const bool concurrent = slot.mode == core::PairMode::kSic ||
                              slot.mode == core::PairMode::kSicPowerControl ||
                              slot.mode == core::PairMode::kSicMultirate;
      if (concurrent && first == CheckOutcome::kFailed &&
          second == CheckOutcome::kFailed) {
        // Both lost: retry the pair one step down the degradation ladder.
        RunSlot retry;
        retry.first = slot.first;
        retry.second = slot.second;
        retry.mode = degrade(slot.mode);
        ++telemetry_.mode_demotions;
        if (sink_ != nullptr) {
          sink_->instant("mode_demotion", now_us(), executor_tid_,
                         {{"from", core::to_string(slot.mode)},
                          {"to", core::to_string(retry.mode)}});
        }
        round_slots_.push_back(retry);
      } else if (concurrent) {
        // One lost (typically the weaker to a cancellation failure):
        // immediate serial fallback for the victim alone.
        for (const auto& [client, outcome] :
             {std::pair{slot.first, first}, std::pair{slot.second, second}}) {
          if (outcome != CheckOutcome::kFailed) continue;
          RunSlot retry;
          retry.first = client;
          retry.mode = core::PairMode::kSolo;
          ++telemetry_.mode_demotions;
          if (sink_ != nullptr) {
            sink_->instant("mode_demotion", now_us(), executor_tid_,
                           {{"from", core::to_string(slot.mode)},
                            {"to", "solo"},
                            {"client", std::to_string(client)}});
          }
          round_slots_.push_back(retry);
        }
      }
      // kSolo / kSerial failures mean the clean-rate estimate itself is
      // stale; retrying on the same estimate is futile, so those clients
      // wait for the round boundary's re-estimation + re-matching.
    }
    run_slot(index + 1);
  }

  CheckOutcome check_client(int client) {
    const std::size_t c = static_cast<std::size_t>(client);
    if (pending_[c] <= 0) return CheckOutcome::kConfirmed;
    const std::uint64_t total = ap_->received_from(client + 1);
    const std::uint64_t delta = total - ap_seen_[c];
    ap_seen_[c] = total;
    if (delta > 0) {
      if (faults_->ack_lost()) {
        // The AP has the frame; the station never hears so and will
        // retransmit — the duplicate-delivery path.
        ++telemetry_.ack_losses;
        last_cause_[c] = FailCause::kAckLoss;
        if (sink_ != nullptr) {
          sink_->instant("ack_loss", now_us(), client + 1);
        }
      } else {
        --pending_[c];
        const std::size_t bucket =
            std::min(static_cast<std::size_t>(attempts_[c] > 0
                                                  ? attempts_[c] - 1
                                                  : 0),
                     telemetry_.retry_histogram.size() - 1);
        ++telemetry_.retry_histogram[bucket];
        if (attempts_[c] > 1) ++telemetry_.recovered;
        return CheckOutcome::kConfirmed;
      }
    } else if (faults_->was_injected(frame_id(client))) {
      ++telemetry_.cancellation_failures;
      last_cause_[c] = FailCause::kCancellation;
      if (sink_ != nullptr) {
        sink_->instant("cancellation_failure", now_us(), client + 1);
      }
    } else {
      ++telemetry_.rate_misses;
      last_cause_[c] = FailCause::kRateMiss;
      if (sink_ != nullptr) {
        sink_->instant("rate_miss", now_us(), client + 1);
      }
    }
    ++failures_[c];
    if (!config_->recovery.enabled ||
        attempts_[c] >= config_->recovery.max_attempts_per_frame) {
      give_up(c);
      dropped_[c] = true;
      SIC_LOG_WARN("client %d dropped after %d attempts", client,
                   attempts_[c]);
      if (sink_ != nullptr) {
        sink_->instant("drop", now_us(), client + 1,
                       {{"attempts", std::to_string(attempts_[c])}});
      }
      return CheckOutcome::kDropped;
    }
    return CheckOutcome::kFailed;
  }

  [[nodiscard]] static core::PairMode degrade(core::PairMode mode) {
    switch (mode) {
      case core::PairMode::kSicMultirate: return core::PairMode::kSic;
      case core::PairMode::kSic: return core::PairMode::kSicPowerControl;
      case core::PairMode::kSicPowerControl: return core::PairMode::kSerial;
      case core::PairMode::kSerial:
      case core::PairMode::kSolo: break;
    }
    return mode;
  }

  /// Round boundary: every frame either confirmed, dropped, or waiting on
  /// a fresh channel estimate. Re-measure, advance the channel, and
  /// re-match the residual backlog.
  void end_round() {
    std::vector<int> residual;
    for (std::size_t c = 0; c < pending_.size(); ++c) {
      if (pending_[c] > 0) residual.push_back(static_cast<int>(c));
    }
    close_round_span(residual.empty() ? "drained" : "residual");
    if (residual.empty()) return;  // all confirmed or dropped: drain
    SIC_LOG_DEBUG("round %d ends with %zu residual clients", rounds_,
                  residual.size());
    if (!config_->recovery.enabled ||
        rounds_ >= config_->recovery.max_rematch_rounds) {
      for (const int client : residual) {
        const std::size_t c = static_cast<std::size_t>(client);
        give_up(c);
        dropped_[c] = true;
      }
      return;
    }
    ++rounds_;
    ++telemetry_.rematch_rounds;
    if (sink_ != nullptr) {
      sink_->instant("rematch", now_us(), executor_tid_,
                     {{"round", std::to_string(rounds_)},
                      {"residual", std::to_string(residual.size())}});
    }

    // Fresh measurement of every client, then one AR(1) step so the
    // re-matched slots fly through a channel that has again drifted.
    if (faults_->config().channel_faults()) {
      for (std::size_t c = 0; c < estimates_.size(); ++c) {
        estimates_[c] = faults_->true_rss(clients_[c].rss, static_cast<int>(c));
      }
      faults_->advance_epoch();
      for (std::size_t c = 0; c < estimates_.size(); ++c) {
        medium_->set_gain(kApId, static_cast<int>(c) + 1,
                          faults_->true_rss(clients_[c].rss,
                                            static_cast<int>(c)));
      }
    }

    std::vector<int> pairable;
    std::vector<int> solo;
    for (const int client : residual) {
      const std::size_t c = static_cast<std::size_t>(client);
      if (failures_[c] >= config_->recovery.demote_after_failures) {
        if (!demoted_[c]) {
          demoted_[c] = true;
          ++telemetry_.client_demotions;
          if (sink_ != nullptr) {
            sink_->instant("client_demotion", now_us(), client + 1,
                           {{"failures", std::to_string(failures_[c])}});
          }
        }
        solo.push_back(client);
      } else {
        pairable.push_back(client);
      }
    }

    round_slots_.clear();
    if (pairable.size() >= 2) {
      // The engine persists across re-match rounds: per-client derived
      // state and cached pair plans survive, and only clients whose fresh
      // estimate actually moved get their row recomputed. With channel
      // faults off the estimates never change, so later rounds re-match the
      // shrinking residual set entirely from cache.
      if (rematch_engine_ == nullptr) {
        core::SchedulerOptions options = config_->recovery.rematch_options;
        options.packet_bits = config_->packet_bits;
        rematch_engine_ =
            std::make_unique<core::PairCostEngine>(*adapter_, options);
        std::vector<channel::LinkBudget> budgets;
        budgets.reserve(estimates_.size());
        for (const Milliwatts rss : estimates_) {
          budgets.push_back(channel::LinkBudget{rss, noise_});
        }
        rematch_engine_->set_clients(budgets);
      } else {
        for (std::size_t c = 0; c < estimates_.size(); ++c) {
          rematch_engine_->update_client(static_cast<int>(c), estimates_[c]);
        }
      }
      const core::Schedule rematched =
          rematch_engine_->schedule_subset(pairable);
      margin_db_ = rematch_engine_->options().admission_margin_db.value();
      for (const auto& s : rematched.slots) {
        RunSlot rs;
        rs.first = pairable[static_cast<std::size_t>(s.first)];
        rs.second =
            s.second >= 0 ? pairable[static_cast<std::size_t>(s.second)] : -1;
        rs.mode = s.second < 0 ? core::PairMode::kSolo : s.plan.mode;
        rs.planned_weaker_scale = s.plan.weaker_power_scale;
        rs.use_planned_scale = true;
        round_slots_.push_back(rs);
      }
    } else {
      for (const int client : pairable) solo.push_back(client);
    }
    std::sort(solo.begin(), solo.end());
    for (const int client : solo) {
      RunSlot rs;
      rs.first = client;
      rs.mode = core::PairMode::kSolo;
      round_slots_.push_back(rs);
    }
    round_open_ = true;
    round_start_us_ = now_us();
    run_slot(0);
  }

  [[nodiscard]] double now_us() const {
    return to_seconds(queue_->now()) * 1e6;
  }

  /// Emits the span of the round in flight (planned round 0 or a re-match
  /// round) onto the executor track; safe to call when no round is open.
  void close_round_span(const char* outcome) {
    if (!round_open_) return;
    round_open_ = false;
    if (sink_ != nullptr) {
      sink_->complete("round", round_start_us_,
                      now_us() - round_start_us_, executor_tid_,
                      {{"round", std::to_string(rounds_)},
                       {"outcome", outcome}});
    }
  }

  EventQueue* queue_;
  Medium* medium_;
  AccessPoint* ap_;
  std::span<const channel::LinkBudget> clients_;
  const phy::RateAdapter* adapter_;
  const UploadSimConfig* config_;
  FaultModel* faults_;
  double margin_db_;
  Milliwatts noise_;

  std::vector<Milliwatts> estimates_;   ///< executor's channel knowledge
  std::vector<int> pending_;            ///< unconfirmed frames per client
  std::vector<int> attempts_;           ///< transmissions per client
  std::vector<int> failures_;           ///< failed exchanges per client
  std::vector<bool> dropped_;           ///< gave up on this client
  std::vector<bool> demoted_;           ///< barred from pairing
  std::vector<std::uint64_t> ap_seen_;  ///< AP receive counters last seen
  std::vector<FailCause> last_cause_;   ///< most recent failure per client
  std::vector<std::uint64_t> unrecovered_per_client_;
  std::vector<RunSlot> round_slots_;
  /// Lazily built on the first re-match; rows track estimate drift after.
  std::unique_ptr<core::PairCostEngine> rematch_engine_;
  int rounds_ = 0;
  FailureTelemetry telemetry_;

  /// Pure observers — write-only from the simulation's point of view.
  obs::TraceSink* sink_;
  int executor_tid_;
  bool round_open_ = false;
  double round_start_us_ = 0.0;
  double slot_start_us_ = 0.0;
};

}  // namespace

UploadSimResult run_scheduled_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const core::Schedule& schedule,
    const UploadSimConfig& config) {
  EventQueue queue;
  auto medium = build_medium(queue, clients, adapter, config);
  AccessPoint ap{queue, *medium, kApId};
  FaultModel faults{config.faults, static_cast<int>(clients.size()),
                    config.seed};
  if (config.faults.channel_faults()) {
    // The schedule was planned on the nominal (stale) RSS; the packets fly
    // through the drifted channel.
    for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
      medium->set_gain(kApId, i + 1,
                       faults.true_rss(
                           clients[static_cast<std::size_t>(i)].rss, i));
    }
  }
  if (config.faults.cancellation_failure_prob > 0.0) {
    medium->set_decode_fault_hook([&faults](const Frame& f, bool sic_path) {
      return faults.should_fail_decode(f, sic_path);
    });
  }
  if (obs::TraceSink* sink = obs::trace()) {
    name_trace_tracks(*sink, clients.size(),
                      static_cast<int>(clients.size()) + 1);
  }
  ClosedLoopRunner runner{queue,   *medium,  ap,     clients,
                          adapter, schedule, config, faults};
  runner.start();
  queue.run_until(config.horizon);
  runner.finalize();

  UploadSimResult result;
  std::uint64_t offered = 0;
  for (const auto& slot : schedule.slots) {
    offered += slot.second >= 0 ? 2 : 1;
  }
  result.offered = offered;
  result.delivered = ap.stats().data_received;
  result.completion_s = to_seconds(queue.now());
  result.medium = medium->stats();
  result.failures = runner.telemetry();
  result.unrecovered_per_client = runner.unrecovered_per_client();
  result.failures.duplicate_deliveries = ap.stats().duplicate_data;
  result.retries = result.failures.retransmissions;
  result.drops = result.failures.unrecovered;
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("mac.upload.runs").inc();
    reg->counter("mac.upload.offered").inc(result.offered);
    reg->counter("mac.upload.delivered").inc(result.delivered);
    reg->histogram("mac.upload.completion_s").observe(result.completion_s);
    publish_failure_telemetry(*reg, result.failures);
    publish_medium_stats(*reg, result.medium);
  }
  SIC_LOG_INFO(
      "scheduled upload: %zu clients, %llu/%llu delivered, "
      "%llu retransmissions, %llu unrecovered, %.3f s",
      clients.size(), static_cast<unsigned long long>(result.delivered),
      static_cast<unsigned long long>(result.offered),
      static_cast<unsigned long long>(result.failures.retransmissions),
      static_cast<unsigned long long>(result.failures.unrecovered),
      result.completion_s);
  return result;
}

}  // namespace sic::mac
