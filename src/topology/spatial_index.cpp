#include "topology/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::topology {

namespace {

/// Sort key for k_nearest: (distance, id), distance computed with the
/// same function the callers use so boundary semantics line up exactly.
struct Near {
  double dist;
  int id;
  friend bool operator<(const Near& a, const Near& b) {
    return a.dist < b.dist || (bitwise_equal(a.dist, b.dist) && a.id < b.id);
  }
};

}  // namespace

SpatialGridIndex::SpatialGridIndex(std::span<const Point> points,
                                   double cell_size_m)
    : points_(points.begin(), points.end()) {
  const int n = static_cast<int>(points_.size());
  double max_x = 0.0;
  double max_y = 0.0;
  if (n > 0) {
    min_x_ = max_x = points_[0].x;
    min_y_ = max_y = points_[0].y;
    for (const Point& p : points_) {
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
  }
  const double extent = std::max(max_x - min_x_, max_y - min_y_);
  if (cell_size_m > 0.0) {
    cell_m_ = cell_size_m;
  } else {
    // ~1 point per cell for uniform layouts; degenerate extents (single
    // point, collinear duplicates) fall back to one cell.
    const double side = std::ceil(std::sqrt(static_cast<double>(std::max(n, 1))));
    cell_m_ = extent > 0.0 ? extent / side : 1.0;
  }
  SIC_CHECK(cell_m_ > 0.0);
  nx_ = std::max(1, static_cast<int>(std::floor((max_x - min_x_) / cell_m_)) + 1);
  ny_ = std::max(1, static_cast<int>(std::floor((max_y - min_y_) / cell_m_)) + 1);

  const std::size_t cells = static_cast<std::size_t>(nx_) *
                            static_cast<std::size_t>(ny_);
  std::vector<int> count(cells, 0);
  for (const Point& p : points_) {
    ++count[static_cast<std::size_t>(cell_y(p.y)) *
                static_cast<std::size_t>(nx_) +
            static_cast<std::size_t>(cell_x(p.x))];
  }
  cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + count[c];
  }
  ids_.assign(static_cast<std::size_t>(n), 0);
  std::vector<int> cursor(cell_start_.begin(), cell_start_.end() - 1);
  // Points are appended in id order, so each cell's slice is ascending.
  for (int id = 0; id < n; ++id) {
    const Point& p = points_[static_cast<std::size_t>(id)];
    const std::size_t c = static_cast<std::size_t>(cell_y(p.y)) *
                              static_cast<std::size_t>(nx_) +
                          static_cast<std::size_t>(cell_x(p.x));
    ids_[static_cast<std::size_t>(cursor[c]++)] = id;
  }
}

int SpatialGridIndex::cell_x(double x) const {
  const int c = static_cast<int>(std::floor((x - min_x_) / cell_m_));
  return std::clamp(c, 0, nx_ - 1);
}

int SpatialGridIndex::cell_y(double y) const {
  const int c = static_cast<int>(std::floor((y - min_y_) / cell_m_));
  return std::clamp(c, 0, ny_ - 1);
}

int SpatialGridIndex::max_ring(Point query) const {
  if (points_.empty()) return -1;
  const int cx = cell_x(query.x);
  const int cy = cell_y(query.y);
  return std::max(std::max(cx, nx_ - 1 - cx), std::max(cy, ny_ - 1 - cy));
}

void SpatialGridIndex::collect_ring(Point query, int ring,
                                    std::vector<int>& out) const {
  if (points_.empty() || ring < 0) return;
  const int cx = cell_x(query.x);
  const int cy = cell_y(query.y);
  const std::size_t before = out.size();
  const auto take_cell = [&](int x, int y) {
    if (x < 0 || x >= nx_ || y < 0 || y >= ny_) return;
    const std::size_t c = static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(nx_) +
                          static_cast<std::size_t>(x);
    for (int i = cell_start_[c]; i < cell_start_[c + 1]; ++i) {
      out.push_back(ids_[static_cast<std::size_t>(i)]);
    }
  };
  if (ring == 0) {
    take_cell(cx, cy);
    return;  // a single cell's slice is already ascending
  }
  // Perimeter of the (2·ring+1)² square: top and bottom rows, then the
  // two side columns — canonical order, then one sort for the id contract.
  for (int x = cx - ring; x <= cx + ring; ++x) take_cell(x, cy - ring);
  for (int x = cx - ring; x <= cx + ring; ++x) take_cell(x, cy + ring);
  for (int y = cy - ring + 1; y <= cy + ring - 1; ++y) {
    take_cell(cx - ring, y);
    take_cell(cx + ring, y);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
}

void SpatialGridIndex::k_nearest(Point query, int k,
                                 std::vector<int>& out) const {
  out.clear();
  if (points_.empty() || k <= 0) return;
  std::vector<Near> found;
  std::vector<int> ring_ids;
  const int last_ring = max_ring(query);
  for (int ring = 0; ring <= last_ring; ++ring) {
    // Enough candidates, and every unvisited ring is provably farther
    // than the current k-th best: done.
    if (static_cast<int>(found.size()) >= k) {
      std::nth_element(found.begin(),
                       found.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       found.end());
      if (ring_lower_bound_m(ring) >
          found[static_cast<std::size_t>(k - 1)].dist) {
        break;
      }
    }
    ring_ids.clear();
    collect_ring(query, ring, ring_ids);
    for (const int id : ring_ids) {
      found.push_back(
          Near{distance(query, points_[static_cast<std::size_t>(id)]), id});
    }
  }
  std::sort(found.begin(), found.end());
  const std::size_t take =
      std::min(found.size(), static_cast<std::size_t>(k));
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(found[i].id);
}

void SpatialGridIndex::within_radius(Point query, double radius_m,
                                     std::vector<int>& out) const {
  out.clear();
  if (points_.empty() || radius_m < 0.0) return;
  std::vector<int> ring_ids;
  const int last_ring = max_ring(query);
  for (int ring = 0; ring <= last_ring; ++ring) {
    if (ring_lower_bound_m(ring) > radius_m) break;
    ring_ids.clear();
    collect_ring(query, ring, ring_ids);
    for (const int id : ring_ids) {
      if (distance(query, points_[static_cast<std::size_t>(id)]) <=
          radius_m) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace sic::topology
