#include "mac/upload_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace sic::mac {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

std::vector<channel::LinkBudget> clients_db(std::initializer_list<double> snrs) {
  std::vector<channel::LinkBudget> out;
  for (const double db : snrs) {
    out.push_back(channel::LinkBudget{Milliwatts{Decibels{db}.linear()}, kN0});
  }
  return out;
}

TEST(UploadSim, DcfDeliversBacklog) {
  const auto clients = clients_db({25.0, 18.0, 30.0});
  UploadSimConfig config;
  config.frames_per_client = 3;
  const auto result = run_dcf_upload(clients, kShannon, config);
  EXPECT_EQ(result.offered, 9u);
  EXPECT_GT(result.delivered, 6u);
  EXPECT_GT(result.completion_s, 0.0);
}

TEST(UploadSim, ScheduledPlainPairsAllDecode) {
  // The executable-feasibility check: every pair the scheduler plans as
  // concurrent must decode at the AP under the medium's SIC model.
  const auto clients = clients_db({30.0, 24.0, 15.0, 12.0, 20.0, 10.0});
  core::SchedulerOptions options;
  const auto schedule = core::schedule_upload(clients, kShannon, options);
  UploadSimConfig config;
  const auto result = run_scheduled_upload(clients, kShannon, schedule, config);
  EXPECT_EQ(result.delivered, result.offered);
  EXPECT_EQ(result.offered, 6u);
}

TEST(UploadSim, ScheduledPowerControlPairsAllDecode) {
  const auto clients = clients_db({30.0, 29.0, 21.0, 20.0, 16.0});
  core::SchedulerOptions options;
  options.enable_power_control = true;
  const auto schedule = core::schedule_upload(clients, kShannon, options);
  UploadSimConfig config;
  const auto result = run_scheduled_upload(clients, kShannon, schedule, config);
  EXPECT_EQ(result.delivered, result.offered);
  EXPECT_EQ(result.offered, 5u);
}

TEST(UploadSim, ScheduledMultiratePairsAllDecode) {
  // Close-RSS cell: the scheduler picks multirate slots, which the runner
  // executes as fragment bursts; every packet must still complete.
  const auto clients = clients_db({26.0, 25.0, 21.0, 20.0});
  core::SchedulerOptions options;
  options.enable_multirate = true;
  const auto schedule = core::schedule_upload(clients, kShannon, options);
  bool has_multirate = false;
  for (const auto& slot : schedule.slots) {
    if (slot.plan.mode == core::PairMode::kSicMultirate) has_multirate = true;
  }
  ASSERT_TRUE(has_multirate) << "cell should trigger multirate pairing";
  const auto result =
      run_scheduled_upload(clients, kShannon, schedule, UploadSimConfig{});
  EXPECT_EQ(result.delivered, result.offered);
  EXPECT_EQ(result.offered, 4u);
}

TEST(UploadSim, MultirateScheduleFasterThanSerialSchedule) {
  const auto clients = clients_db({26.0, 25.0, 21.0, 20.0});
  core::SchedulerOptions mr_options;
  mr_options.enable_multirate = true;
  const auto mr_schedule = core::schedule_upload(clients, kShannon, mr_options);
  UploadSimConfig config;
  const auto mr_run =
      run_scheduled_upload(clients, kShannon, mr_schedule, config);
  core::Schedule serial;
  for (int i = 0; i < 4; ++i) {
    core::ScheduledSlot slot;
    slot.first = i;
    slot.plan.mode = core::PairMode::kSolo;
    slot.plan.airtime = core::solo_airtime(clients[static_cast<std::size_t>(i)],
                                           kShannon, config.packet_bits);
    serial.slots.push_back(slot);
  }
  const auto serial_run =
      run_scheduled_upload(clients, kShannon, serial, config);
  EXPECT_EQ(mr_run.delivered, mr_run.offered);
  EXPECT_LT(mr_run.completion_s, serial_run.completion_s);
}

TEST(UploadSim, ScheduledBeatsSerialOnFavorableTopology) {
  // Clients on the Fig. 4 ridge pair perfectly; the scheduled SIC upload
  // should finish faster than the same medium running one-at-a-time.
  const auto clients = clients_db({24.0, 12.0, 26.0, 13.0, 28.0, 14.0});
  core::SchedulerOptions options;
  const auto schedule = core::schedule_upload(clients, kShannon, options);
  UploadSimConfig config;
  const auto scheduled =
      run_scheduled_upload(clients, kShannon, schedule, config);
  // Serial schedule: force the pairing to be all-solo by scheduling each
  // client as its own slot.
  core::Schedule serial;
  for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
    core::ScheduledSlot slot;
    slot.first = i;
    slot.second = -1;
    slot.plan.mode = core::PairMode::kSolo;
    slot.plan.airtime = core::solo_airtime(clients[static_cast<std::size_t>(i)],
                                           kShannon, config.packet_bits);
    serial.slots.push_back(slot);
  }
  const auto serial_run =
      run_scheduled_upload(clients, kShannon, serial, config);
  EXPECT_EQ(scheduled.delivered, scheduled.offered);
  EXPECT_EQ(serial_run.delivered, serial_run.offered);
  EXPECT_LT(scheduled.completion_s, serial_run.completion_s);
}

TEST(UploadSim, SicApImprovesOrMatchesDcfCompletion) {
  const auto clients = clients_db({26.0, 13.0, 24.0, 12.0});
  UploadSimConfig sic_config;
  sic_config.frames_per_client = 4;
  UploadSimConfig plain_config = sic_config;
  plain_config.sic_at_ap = false;
  const auto with_sic = run_dcf_upload(clients, kShannon, sic_config);
  const auto without = run_dcf_upload(clients, kShannon, plain_config);
  // Identical contention dynamics are not guaranteed, but SIC should never
  // lose deliveries.
  EXPECT_GE(with_sic.delivered, without.delivered);
}

TEST(UploadSim, OddClientCountScheduleRuns) {
  const auto clients = clients_db({22.0, 11.0, 18.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  const auto result =
      run_scheduled_upload(clients, kShannon, schedule, UploadSimConfig{});
  EXPECT_EQ(result.offered, 3u);
  EXPECT_EQ(result.delivered, 3u);
}

TEST(UploadSim, MismatchedNoiseRejected) {
  std::vector<channel::LinkBudget> clients{
      {Milliwatts{10.0}, Milliwatts{1.0}},
      {Milliwatts{10.0}, Milliwatts{2.0}}};
  EXPECT_THROW((void)run_dcf_upload(clients, kShannon, UploadSimConfig{}),
               std::logic_error);
}

}  // namespace
}  // namespace sic::mac
