/// Reproduces Fig. 6: Monte Carlo CDF of SIC gain for two transmissions to
/// different receivers. "No gain from SIC in 90% of the cases." 10,000
/// random topologies per range, path-loss exponent α = 4.

#include <cstdio>

#include "analysis/montecarlo.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  bench::header("Fig. 6 — two transmitters to different receivers",
                "no gain from SIC in ~90% of random topologies, all ranges");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  constexpr int kTrials = 10000;
  constexpr std::uint64_t kSeed = 1234;
  constexpr double kBits = 12000.0;
  const int threads = bench::threads(argc, argv);
  std::printf("trials=%d seed=%llu alpha=4 threads=%d\n\n", kTrials,
              static_cast<unsigned long long>(kSeed), threads);
  for (const double range : {30.0, 40.0, 50.0}) {
    topology::SamplerConfig config;
    config.range_m = range;
    const auto gains = analysis::run_two_link_gains(config, shannon, kTrials,
                                                    kSeed, kBits, threads);
    const analysis::EmpiricalCdf cdf{gains};
    char label[64];
    std::snprintf(label, sizeof(label), "range %.0f m", range);
    bench::print_fractions(label, cdf);
    bench::print_cdf(label, cdf);
    if (const auto prefix = bench::csv_prefix(argc, argv)) {
      std::snprintf(label, sizeof(label), "fig06_range%.0f.csv", range);
      bench::write_text_file(*prefix + label,
                             bench::manifest(kSeed, timer, kTrials) +
                                 bench::cdf_csv(cdf));
    }
  }
  std::printf("\nlower path-loss exponent (paper: 'gains from lower pathloss"
              " exponents ... are even lower'):\n");
  for (const double alpha : {3.0, 4.0}) {
    topology::SamplerConfig config;
    config.pathloss_exponent = alpha;
    const auto gains = analysis::run_two_link_gains(config, shannon, kTrials,
                                                    kSeed, kBits, threads);
    const analysis::EmpiricalCdf cdf{gains};
    char label[64];
    std::snprintf(label, sizeof(label), "alpha %.1f", alpha);
    bench::print_fractions(label, cdf);
  }
  return 0;
}
