/// Ablation — backlogged queues and packet packing (Section 5.4): drains
/// a cell of backlogged clients under the three pair disciplines and shows
/// how the packing payoff depends on traffic patterns ("this kind of
/// transmission will depend heavily on the traffic patterns").

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/backlog.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sic;
  bench::header("Ablation — backlogged queues and packet packing",
                "packing's edge over pairing grows with queue depth and "
                "queue asymmetry");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  constexpr Milliwatts kN0{1.0};
  constexpr int kClients = 10;
  constexpr int kTrials = 200;

  const auto run = [&](int min_packets, int max_packets, bool packing,
                       std::uint64_t seed) {
    Rng rng{seed};
    double total_sched = 0.0;
    double total_serial = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<core::BacklogClient> clients;
      for (int i = 0; i < kClients; ++i) {
        clients.push_back(core::BacklogClient{
            channel::LinkBudget{
                Milliwatts{Decibels{rng.uniform(10.0, 35.0)}.linear()}, kN0},
            rng.uniform_int(min_packets, max_packets)});
      }
      core::BacklogOptions options;
      options.enable_packing = packing;
      total_sched +=
          core::schedule_backlog_upload(clients, shannon, options)
              .total_airtime;
      total_serial +=
          core::serial_backlog_airtime(clients, shannon, 12000.0);
    }
    return total_serial / total_sched;
  };

  std::printf("%-28s %-18s %-18s\n", "queue depths", "gain w/o packing",
              "gain with packing");
  struct Case {
    const char* name;
    int lo;
    int hi;
  };
  for (const Case& c : {Case{"1 packet each", 1, 1},
                        Case{"1-4 packets", 1, 4},
                        Case{"4-8 packets", 4, 8},
                        Case{"1-16 packets (bursty)", 1, 16}}) {
    const double without = run(c.lo, c.hi, false, 5);
    const double with = run(c.lo, c.hi, true, 5);
    std::printf("%-28s %-18.4f %-18.4f\n", c.name, without, with);
  }
  std::printf("\n(gain = serial drain time / scheduled drain time, averaged "
              "over %d random 10-client cells)\n", kTrials);
  return 0;
}
