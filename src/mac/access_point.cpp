#include "mac/access_point.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sic::mac {

AccessPoint::AccessPoint(EventQueue& queue, Medium& medium, MacNodeId id)
    : queue_(&queue),
      medium_(&medium),
      id_(id),
      per_source_(static_cast<std::size_t>(medium.n_nodes()), 0),
      seen_ids_(static_cast<std::size_t>(medium.n_nodes())) {
  medium_->attach(id_, this);
}

std::uint64_t AccessPoint::received_from(MacNodeId src) const {
  SIC_CHECK(src >= 0 && src < static_cast<MacNodeId>(per_source_.size()));
  return per_source_[static_cast<std::size_t>(src)];
}

void AccessPoint::on_frame_received(const Frame& frame, bool decoded) {
  if (!decoded) return;
  if (frame.type == FrameType::kRts) {
    // Grant the reservation: CTS after SIFS, NAV shortened by the CTS
    // exchange itself.
    const PhyParams& phy = medium_->phy();
    Frame cts;
    cts.id = (static_cast<std::uint64_t>(id_) << 48) | frame.id;
    cts.type = FrameType::kCts;
    cts.src = id_;
    cts.dst = frame.src;
    cts.payload_bits = phy.cts_bits;
    cts.acked_frame_id = frame.id;
    cts.nav_duration_ns = std::max<std::int64_t>(
        0, frame.nav_duration_ns - phy.sifs - phy.cts_duration());
    ack_backlog_.push_back(cts);
    pump_acks();
    return;
  }
  if (frame.type != FrameType::kData) return;
  // Non-final fragments (multirate packetization) complete no packet and
  // solicit no ACK; the final fragment accounts for the whole packet.
  if (!frame.final_fragment) return;
  ++stats_.data_received;
  if (frame.src >= 0 &&
      frame.src < static_cast<MacNodeId>(per_source_.size())) {
    ++per_source_[static_cast<std::size_t>(frame.src)];
    if (!seen_ids_[static_cast<std::size_t>(frame.src)].insert(frame.id)
             .second) {
      ++stats_.duplicate_data;
    }
  }
  Frame ack;
  ack.id = (static_cast<std::uint64_t>(id_) << 48) | frame.id;
  ack.type = FrameType::kAck;
  ack.src = id_;
  ack.dst = frame.src;
  ack.payload_bits = medium_->phy().ack_bits;
  ack.acked_frame_id = frame.id;
  ack_backlog_.push_back(ack);
  pump_acks();
}

void AccessPoint::pump_acks() {
  if (ack_scheduled_ || ack_backlog_.empty()) return;
  const PhyParams& phy = medium_->phy();
  const SimTime at =
      std::max(queue_->now() + phy.sifs, next_ack_ready_ + phy.sifs);
  ack_scheduled_ = true;
  queue_->schedule_at(at, [this] {
    ack_scheduled_ = false;
    if (ack_backlog_.empty()) return;
    if (medium_->is_transmitting(id_)) {
      // Previous ACK still on air; retry after it ends.
      pump_acks();
      return;
    }
    if (medium_->carrier_busy(id_) || medium_->is_receiving(id_)) {
      // An SIC-capable AP defers its ACK while it is still receiving
      // another (cancellable) frame — transmitting now would both violate
      // half duplex and stomp the weaker signal's tail (the ACK-timing
      // issue [4] discusses). The is_receiving check matters for frames
      // too weak to trip energy detection but strong enough to decode
      // after cancellation. Retry one slot later.
      next_ack_ready_ = queue_->now() + medium_->phy().slot;
      pump_acks();
      return;
    }
    const Frame ack = ack_backlog_.front();
    ack_backlog_.pop_front();
    medium_->transmit(ack, medium_->phy().ack_rate);
    next_ack_ready_ =
        queue_->now() + medium_->frame_duration(ack, medium_->phy().ack_rate);
    ++stats_.acks_sent;
    if (!ack_backlog_.empty()) pump_acks();
  });
}

}  // namespace sic::mac
