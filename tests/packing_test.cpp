#include "core/packing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "phy/capacity.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 kShannon);
}

TEST(Packing, GainAtLeastOneEverywhere) {
  for (double s1 = 2.0; s1 <= 42.0; s1 += 2.0) {
    for (double s2 = 1.0; s2 <= s1; s2 += 2.0) {
      EXPECT_GE(packing_two_to_one(ctx_db(s1, s2)).gain, 1.0)
          << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(Packing, TrainLengthMatchesAirtimeRatio) {
  const auto ctx = ctx_db(21.0, 20.0);  // stronger much slower under SIC
  const auto rates = sic_rates(ctx);
  const double t_strong = ctx.packet_bits / rates.stronger.value();
  const double t_weak = ctx.packet_bits / rates.weaker.value();
  const auto result = packing_two_to_one(ctx);
  if (result.gain > 1.0) {
    EXPECT_EQ(result.fast_packets,
              static_cast<int>(std::floor(std::max(t_strong, t_weak) /
                                          std::min(t_strong, t_weak))));
  }
}

TEST(Packing, SimilarRssPacksManyWeakerPackets) {
  // Near-equal RSS: r₁ tiny, r₂ large ⇒ long trains. The *per-packet* gain
  // stays moderate (the train asymptotically reproduces the weaker link's
  // clean throughput), which is exactly why the paper prefers pairing +
  // power control over raw packing in this regime.
  const auto result = packing_two_to_one(ctx_db(20.5, 20.0));
  EXPECT_GT(result.fast_packets, 3);
  EXPECT_GT(result.gain, 1.05);
  EXPECT_LT(result.gain, 1.5);
}

TEST(Packing, InfeasiblePairFallsBackToSerial) {
  const auto ctx = UploadPairContext::make(Milliwatts{100.0}, Milliwatts{0.2},
                                           kN0, kShannon);
  // Weaker has SNR below anything useful but nonzero; force the stronger
  // SIC rate to zero instead via a discrete table.
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const auto dctx = UploadPairContext::make(
      Milliwatts{Decibels{26.0}.linear()}, Milliwatts{Decibels{25.0}.linear()},
      kN0, g);
  const auto result = packing_two_to_one(dctx);
  EXPECT_DOUBLE_EQ(result.gain, 1.0);
  (void)ctx;
}

TEST(Packing, FluidGainIsCapacityRatioIdentity) {
  // With the Shannon policy the SIC rate pair sums to C₊SIC (eq 4), so the
  // fluid 1:1-mix gain equals (serial time-share) / (sum-rate service).
  for (double s1 = 6.0; s1 <= 40.0; s1 += 4.0) {
    for (double s2 = 3.0; s2 <= s1; s2 += 4.0) {
      const auto ctx = ctx_db(s1, s2);
      const auto arrival = ctx.arrival;
      const double c_sic =
          phy::capacity_with_sic(megahertz(20.0), arrival).value();
      const double expect = std::max(
          1.0, (serial_airtime(ctx) / 2.0) / (ctx.packet_bits / c_sic));
      EXPECT_NEAR(packing_fluid_gain(ctx), expect, expect * 1e-9)
          << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(Packing, TrainGainEqualsSameMixFluidGain) {
  // For the k:1 mix the train actually serves, a fluid schedule at the
  // same SIC rate pair takes max(t_slow, k·t_fast) too — the train is
  // already mix-optimal, no barrier between the two models.
  const auto ctx = ctx_db(26.0, 14.0);
  const auto result = packing_two_to_one(ctx);
  if (result.gain > 1.0) {
    const auto rates = sic_rates(ctx);
    const double t_strong = ctx.packet_bits / rates.stronger.value();
    const double t_weak = ctx.packet_bits / rates.weaker.value();
    const double t_fast = std::min(t_strong, t_weak);
    const double t_slow = std::max(t_strong, t_weak);
    EXPECT_NEAR(result.span,
                std::max(t_slow, result.fast_packets * t_fast),
                result.span * 1e-12);
  }
}

TEST(Packing, FluidGainMatchesCapacityRatioOnRidge) {
  // With Shannon rates, r₁+r₂ = C₊SIC; on the equal-rate ridge the serial
  // baseline equals C₋SIC time-sharing, so the fluid packing gain ≈ the
  // Fig. 3 capacity gain at those RSSs... at least it must exceed 1.
  const auto ctx = ctx_db(24.0, 12.0);
  EXPECT_GT(packing_fluid_gain(ctx), 1.05);
}

TEST(Packing, TimePerPacketConsistent) {
  const auto result = packing_two_to_one(ctx_db(25.0, 24.0));
  EXPECT_NEAR(result.time_per_packet,
              result.span / (result.fast_packets + 1),
              result.time_per_packet * 1e-9);
  EXPECT_NEAR(result.gain,
              result.serial_time_per_packet / result.time_per_packet,
              result.gain * 1e-9);
}

}  // namespace
}  // namespace sic::core
