#include "mac/medium.hpp"

#include <algorithm>

#include "obs/logger.hpp"
#include "obs/trace_sink.hpp"
#include "util/check.hpp"

namespace sic::mac {

Medium::Medium(EventQueue& queue, int n_nodes, Milliwatts noise,
               const phy::RateAdapter& adapter,
               phy::SicDecoderConfig decoder_config)
    : queue_(&queue),
      n_nodes_(n_nodes),
      noise_(noise),
      adapter_(&adapter),
      decoder_(adapter, decoder_config),
      gains_(static_cast<std::size_t>(n_nodes) * n_nodes, Milliwatts{0.0}),
      listeners_(static_cast<std::size_t>(n_nodes), nullptr) {
  SIC_CHECK(n_nodes >= 1);
  SIC_CHECK(noise.value() > 0.0);
}

void Medium::set_gain(MacNodeId tx, MacNodeId rx, Milliwatts rss) {
  SIC_CHECK(tx >= 0 && tx < n_nodes_ && rx >= 0 && rx < n_nodes_ && tx != rx);
  gains_[static_cast<std::size_t>(tx) * n_nodes_ + rx] = rss;
  gains_[static_cast<std::size_t>(rx) * n_nodes_ + tx] = rss;
}

void Medium::set_directional_gain(MacNodeId tx, MacNodeId rx,
                                  Milliwatts rss) {
  SIC_CHECK(tx >= 0 && tx < n_nodes_ && rx >= 0 && rx < n_nodes_ && tx != rx);
  gains_[static_cast<std::size_t>(tx) * n_nodes_ + rx] = rss;
}

Milliwatts Medium::gain(MacNodeId tx, MacNodeId rx) const {
  SIC_DCHECK(tx >= 0 && tx < n_nodes_ && rx >= 0 && rx < n_nodes_);
  return gains_[static_cast<std::size_t>(tx) * n_nodes_ + rx];
}

void Medium::attach(MacNodeId node, MediumListener* listener) {
  SIC_CHECK(node >= 0 && node < n_nodes_);
  listeners_[static_cast<std::size_t>(node)] = listener;
}

bool Medium::carrier_busy(MacNodeId node) const {
  const Milliwatts floor = noise_ * phy_.cs_above_noise.linear();
  for (const auto& t : active_) {
    if (t.frame.src == node) return true;  // own transmission
    const Milliwatts rss = gain(t.frame.src, node) * t.power_scale;
    if (rss >= floor) return true;
  }
  return false;
}

bool Medium::is_transmitting(MacNodeId node) const {
  return std::any_of(active_.begin(), active_.end(), [node](const auto& t) {
    return t.frame.src == node;
  });
}

bool Medium::is_receiving(MacNodeId node) const {
  return std::any_of(active_.begin(), active_.end(), [node](const auto& t) {
    return t.frame.dst == node;
  });
}

SimTime Medium::frame_duration(const Frame& frame, BitsPerSecond rate) const {
  SIC_CHECK_MSG(rate.value() > 0.0, "cannot transmit at zero rate");
  return phy_.preamble + from_seconds(frame.payload_bits / rate.value());
}

void Medium::transmit(const Frame& frame, BitsPerSecond rate,
                      double power_scale) {
  SIC_CHECK(frame.src >= 0 && frame.src < n_nodes_);
  SIC_CHECK(power_scale > 0.0 && power_scale <= 1.0);
  SIC_CHECK_MSG(!is_transmitting(frame.src),
                "node is already transmitting (half duplex)");
  Transmission t;
  t.key = next_key_++;
  t.frame = frame;
  t.rate = rate;
  t.power_scale = power_scale;
  t.start = queue_->now();
  t.end = t.start + frame_duration(frame, rate);
  for (auto& other : active_) {
    other.interferers.push_back(t.key);
    t.interferers.push_back(other.key);
  }
  const std::uint64_t key = t.key;
  const SimTime end = t.end;
  active_.push_back(std::move(t));
  ++stats_.transmissions;
  // Schedule before notifying: a listener may transmit reentrantly.
  queue_->schedule_at(end, [this, key] { finish(key); });
  notify_channel_update();
}

namespace {

enum class DecodeVerdict {
  kCleanOk,
  kCaptureOk,
  kSicOk,
  kFailClean,
  kFailCollision,
  kFailHalfDuplex,
  kFailNoDestination,
};

const char* to_string(DecodeVerdict v) {
  switch (v) {
    case DecodeVerdict::kCleanOk: return "clean";
    case DecodeVerdict::kCaptureOk: return "capture";
    case DecodeVerdict::kSicOk: return "sic";
    case DecodeVerdict::kFailClean: return "fail_clean";
    case DecodeVerdict::kFailCollision: return "fail_collision";
    case DecodeVerdict::kFailHalfDuplex: return "fail_half_duplex";
    case DecodeVerdict::kFailNoDestination: return "no_destination";
  }
  return "?";
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kData: return "data";
    case FrameType::kAck: return "ack";
    case FrameType::kRts: return "rts";
    case FrameType::kCts: return "cts";
  }
  return "?";
}

}  // namespace

void Medium::finish(std::uint64_t key) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [key](const auto& t) { return t.key == key; });
  SIC_CHECK(it != active_.end());
  Transmission done = std::move(*it);
  active_.erase(it);

  // Resolve a transmission by key among active and recently ended ones.
  const auto find_tx = [this](std::uint64_t k) -> const Transmission* {
    for (const auto& t : active_) {
      if (t.key == k) return &t;
    }
    for (const auto& t : recent_) {
      if (t.key == k) return &t;
    }
    return nullptr;
  };

  // Decode verdict for an arbitrary receiver — the destination and any
  // overhearers share the same receiver model.
  const auto decode_at = [&](MacNodeId receiver) -> DecodeVerdict {
    bool half_duplex_conflict = false;
    std::vector<const Transmission*> interferers;
    for (const std::uint64_t k : done.interferers) {
      const Transmission* o = find_tx(k);
      SIC_CHECK_MSG(o != nullptr, "interferer transmission lost");
      if (o->frame.src == receiver) {
        half_duplex_conflict = true;
      } else {
        interferers.push_back(o);
      }
    }
    const Milliwatts signal =
        gain(done.frame.src, receiver) * done.power_scale;
    if (half_duplex_conflict) return DecodeVerdict::kFailHalfDuplex;
    if (interferers.empty()) {
      return adapter_->feasible(done.rate, signal / noise_)
                 ? DecodeVerdict::kCleanOk
                 : DecodeVerdict::kFailClean;
    }
    if (interferers.size() == 1) {
      const Transmission& other = *interferers.front();
      const Milliwatts irss =
          gain(other.frame.src, receiver) * other.power_scale;
      if (signal >= irss) {
        return adapter_->feasible(done.rate, signal / (irss + noise_))
                   ? DecodeVerdict::kCaptureOk
                   : DecodeVerdict::kFailCollision;
      }
      const auto arrival = phy::TwoSignalArrival::make(irss, signal, noise_);
      const auto outcome = decoder_.decode(arrival, other.rate, done.rate);
      return outcome.weaker_decoded ? DecodeVerdict::kSicOk
                                    : DecodeVerdict::kFailCollision;
    }
    return DecodeVerdict::kFailCollision;  // > 2-signal pile-up
  };
  const auto is_success = [](DecodeVerdict v) {
    return v == DecodeVerdict::kCleanOk || v == DecodeVerdict::kCaptureOk ||
           v == DecodeVerdict::kSicOk;
  };

  DecodeVerdict verdict = DecodeVerdict::kFailNoDestination;
  const MacNodeId dst = done.frame.dst;
  if (dst >= 0 && dst < n_nodes_) {
    verdict = decode_at(dst);
    // Fault injection applies to the destination's verdict only, after the
    // physics said yes — overhearers below re-evaluate without the hook.
    if (fault_hook_ && is_success(verdict) &&
        fault_hook_(done.frame, verdict == DecodeVerdict::kSicOk)) {
      verdict = verdict == DecodeVerdict::kCleanOk
                    ? DecodeVerdict::kFailClean
                    : DecodeVerdict::kFailCollision;
      ++stats_.injected_failures;
    }
  }
  // Overhearers: every other attached node that could decode this frame
  // (feeds virtual carrier sense / NAV).
  std::vector<MacNodeId> overhearers;
  for (MacNodeId n = 0; n < n_nodes_; ++n) {
    if (n == dst || n == done.frame.src) continue;
    if (listeners_[static_cast<std::size_t>(n)] == nullptr) continue;
    if (is_success(decode_at(n))) overhearers.push_back(n);
  }

  const bool decoded = is_success(verdict);
  // Frame-fate diagnostics, formerly the SICMAC_MEDIUM_LOG env toggle:
  // now --log-level debug / SICMAC_LOG_LEVEL=debug.
  SIC_LOG_DEBUG(
      "medium %9.1fus %-4s src=%d dst=%d bits=%.0f rate=%.2fMbps "
      "start=%.1fus verdict=%s interferers=%zu",
      to_seconds(queue_->now()) * 1e6, frame_type_name(done.frame.type),
      done.frame.src, done.frame.dst, done.frame.payload_bits,
      done.rate.megabits(), to_seconds(done.start) * 1e6, to_string(verdict),
      done.interferers.size());
  // Every transmission becomes a span on its sender's track, its decode
  // verdict an annotation — this is what makes a faulty round visible on
  // the Perfetto timeline.
  if (obs::TraceSink* sink = obs::trace()) {
    const double start_us = to_seconds(done.start) * 1e6;
    const double dur_us = to_seconds(done.end - done.start) * 1e6;
    sink->complete(frame_type_name(done.frame.type), start_us, dur_us,
                   done.frame.src,
                   obs::TraceSink::Args{
                       {"dst", std::to_string(done.frame.dst)},
                       {"verdict", to_string(verdict)},
                       {"interferers", std::to_string(done.interferers.size())},
                   });
  }
  switch (verdict) {
    case DecodeVerdict::kCleanOk: ++stats_.delivered; break;
    case DecodeVerdict::kCaptureOk:
      ++stats_.delivered;
      ++stats_.capture_decodes;
      break;
    case DecodeVerdict::kSicOk:
      ++stats_.delivered;
      ++stats_.sic_decodes;
      break;
    case DecodeVerdict::kFailClean: ++stats_.failed_clean; break;
    case DecodeVerdict::kFailHalfDuplex:
    case DecodeVerdict::kFailCollision: ++stats_.failed_collision; break;
    case DecodeVerdict::kFailNoDestination: break;
  }

  // Keep the ended transmission around while any active one still lists it
  // as an interferer; prune the rest.
  const Frame delivered_frame = done.frame;
  recent_.push_back(std::move(done));
  std::erase_if(recent_, [this](const Transmission& r) {
    for (const auto& a : active_) {
      if (std::find(a.interferers.begin(), a.interferers.end(), r.key) !=
          a.interferers.end()) {
        return false;
      }
    }
    return true;
  });

  if (dst >= 0 && dst < n_nodes_ && listeners_[static_cast<std::size_t>(dst)]) {
    listeners_[static_cast<std::size_t>(dst)]->on_frame_received(
        delivered_frame, decoded);
  }
  for (const MacNodeId n : overhearers) {
    MediumListener* l = listeners_[static_cast<std::size_t>(n)];
    if (l != nullptr) l->on_frame_overheard(delivered_frame);
  }
  notify_channel_update();
}

void Medium::notify_channel_update() {
  for (MediumListener* l : listeners_) {
    if (l != nullptr) l->on_channel_update();
  }
}

}  // namespace sic::mac
