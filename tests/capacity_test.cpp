#include "phy/capacity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/mathx.hpp"

namespace sic::phy {
namespace {

constexpr Hertz kB = megahertz(20.0);
constexpr Milliwatts kN0{1.0};

TwoSignalArrival arrival_db(double s1_db, double s2_db) {
  return TwoSignalArrival::make(Milliwatts{Decibels{s1_db}.linear()},
                                Milliwatts{Decibels{s2_db}.linear()}, kN0);
}

TEST(ShannonRate, MatchesClosedForm) {
  // SNR 15 dB over 20 MHz: r = 20e6 * log2(1 + 31.62...) ≈ 100.7 Mbps.
  const auto r = shannon_rate(kB, Milliwatts{Decibels{15.0}.linear()}, kN0);
  EXPECT_NEAR(r.value(), 20e6 * std::log2(1.0 + Decibels{15.0}.linear()),
              1.0);
}

TEST(ShannonRate, ZeroSignalIsZeroRate) {
  EXPECT_DOUBLE_EQ(shannon_rate(kB, Milliwatts{0.0}, kN0).value(), 0.0);
  EXPECT_DOUBLE_EQ(shannon_rate(kB, -1.0).value(), 0.0);
}

TEST(ShannonRate, MonotoneInSinr) {
  double prev = 0.0;
  for (double snr_db = -10.0; snr_db <= 40.0; snr_db += 1.0) {
    const double r = shannon_rate(kB, Decibels{snr_db}.linear()).value();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(Sinr, Definition) {
  EXPECT_DOUBLE_EQ(sinr(Milliwatts{10.0}, Milliwatts{4.0}, Milliwatts{1.0}),
                   2.0);
  EXPECT_DOUBLE_EQ(sinr(Milliwatts{10.0}, Milliwatts{0.0}, Milliwatts{2.0}),
                   5.0);
}

TEST(TwoSignalArrival, NormalizesOrder) {
  const auto a = TwoSignalArrival::make(Milliwatts{1.0}, Milliwatts{5.0}, kN0);
  EXPECT_DOUBLE_EQ(a.stronger.value(), 5.0);
  EXPECT_DOUBLE_EQ(a.weaker.value(), 1.0);
}

TEST(SicRates, Equation1And2) {
  const auto a = arrival_db(20.0, 10.0);
  // eq (1): stronger limited by weaker-as-interference.
  const double expected1 =
      kB.value() * log2_1p(a.stronger.value() / (a.weaker.value() + 1.0));
  EXPECT_NEAR(sic_rate_stronger(kB, a).value(), expected1, 1.0);
  // eq (2): weaker clean after cancellation.
  const double expected2 = kB.value() * log2_1p(a.weaker.value());
  EXPECT_NEAR(sic_rate_weaker(kB, a).value(), expected2, 1.0);
}

TEST(SicRates, StrongerMayNeedLowerRateThanWeaker) {
  // Section 2.2's irony: similar RSS ⇒ the stronger tx gets the lower rate.
  const auto a = arrival_db(21.0, 20.0);
  EXPECT_LT(sic_rate_stronger(kB, a).value(), sic_rate_weaker(kB, a).value());
}

TEST(SicRates, ResidualZeroMatchesPerfectCancellation) {
  const auto a = arrival_db(25.0, 12.0);
  EXPECT_DOUBLE_EQ(sic_rate_weaker_residual(kB, a, 0.0).value(),
                   sic_rate_weaker(kB, a).value());
}

TEST(SicRates, ResidualDegradesWeakerRate) {
  const auto a = arrival_db(25.0, 12.0);
  double prev = sic_rate_weaker_residual(kB, a, 0.0).value();
  for (const double res : {0.001, 0.01, 0.1, 1.0}) {
    const double r = sic_rate_weaker_residual(kB, a, res).value();
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Capacity, Equation4ClosedFormEqualsSumOfRates) {
  // C₊SIC = eq(1) + eq(2) identically (the paper's eq (4) identity).
  for (double s1 = 0.0; s1 <= 40.0; s1 += 5.0) {
    for (double s2 = 0.0; s2 <= s1; s2 += 5.0) {
      const auto a = arrival_db(s1, s2);
      const double sum =
          sic_rate_stronger(kB, a).value() + sic_rate_weaker(kB, a).value();
      EXPECT_NEAR(capacity_with_sic(kB, a).value(), sum, sum * 1e-12 + 1e-6)
          << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(Capacity, WithSicBeatsIndividualCapacities) {
  for (double s1 = 5.0; s1 <= 40.0; s1 += 5.0) {
    for (double s2 = 5.0; s2 <= 40.0; s2 += 5.0) {
      const auto a = arrival_db(s1, s2);
      EXPECT_GT(capacity_with_sic(kB, a).value(),
                capacity_without_sic(kB, a).value());
    }
  }
}

TEST(Capacity, GainBoundedByTwo) {
  // Fig. 3: gain in (1, 2); approaches 2 only at vanishing equal SNRs.
  for (double s1 = -10.0; s1 <= 40.0; s1 += 2.5) {
    for (double s2 = -10.0; s2 <= 40.0; s2 += 2.5) {
      const double g = capacity_gain(kB, arrival_db(s1, s2));
      EXPECT_GT(g, 1.0);
      EXPECT_LT(g, 2.0);
    }
  }
}

TEST(Capacity, GainApproachesTwoAtLowEqualSnr) {
  EXPECT_NEAR(capacity_gain(kB, arrival_db(-30.0, -30.0)), 2.0, 0.01);
}

TEST(Capacity, GainLargerWhenRssSimilarAndSmall) {
  // Fig. 3's two monotonicities, sampled.
  const double g_similar = capacity_gain(kB, arrival_db(10.0, 10.0));
  const double g_disparate = capacity_gain(kB, arrival_db(30.0, 10.0));
  EXPECT_GT(g_similar, g_disparate);
  const double g_small = capacity_gain(kB, arrival_db(5.0, 5.0));
  const double g_large = capacity_gain(kB, arrival_db(25.0, 25.0));
  EXPECT_GT(g_small, g_large);
}

/// Property sweep: the gain is symmetric in (S¹, S²) by construction.
class CapacitySymmetry : public ::testing::TestWithParam<double> {};

TEST_P(CapacitySymmetry, GainSymmetricUnderSwap) {
  const double s1 = GetParam();
  for (double s2 = -5.0; s2 <= 40.0; s2 += 5.0) {
    EXPECT_DOUBLE_EQ(capacity_gain(kB, arrival_db(s1, s2)),
                     capacity_gain(kB, arrival_db(s2, s1)));
  }
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, CapacitySymmetry,
                         ::testing::Values(-5.0, 0.0, 10.0, 20.0, 35.0));

}  // namespace
}  // namespace sic::phy
