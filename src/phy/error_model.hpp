#ifndef SICMAC_PHY_ERROR_MODEL_HPP
#define SICMAC_PHY_ERROR_MODEL_HPP

/// \file error_model.hpp
/// First-principles link error model for the 802.11 OFDM PHY: per-
/// modulation bit-error-rate curves (AWGN approximations), coded packet
/// error rates, and the "highest rate sustaining a target delivery ratio"
/// scan — the procedure the paper's measurement campaign ran ("the highest
/// 802.11g bitrate at which 90% of packets are received successfully").
/// The canonical RateTable thresholds are validated against this model in
/// tests: each table rung's min_sinr must sit where this model's 90 %-PRR
/// boundary falls, within the indoor-margin the tables bake in.

#include <string>
#include <vector>

#include "util/units.hpp"

namespace sic::phy {

enum class Modulation {
  kBpsk,
  kQpsk,
  kQam16,
  kQam64,
};

[[nodiscard]] constexpr const char* to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

/// Uncoded bit error rate of the modulation at the given SNR-per-bit-ish
/// symbol SINR (linear). Standard AWGN union-bound approximations
/// (Q-function based; Gray mapping assumed for the QAMs).
[[nodiscard]] double bit_error_rate(Modulation modulation, double sinr_linear);

/// One 802.11a/g MCS: modulation + convolutional code rate.
struct OfdmMcs {
  Modulation modulation;
  double code_rate;         ///< 1/2, 2/3 or 3/4
  BitsPerSecond phy_rate;   ///< 20 MHz channel
};

/// The 8 OFDM MCS of 802.11a/g.
[[nodiscard]] const std::vector<OfdmMcs>& dot11g_mcs();

/// Packet error rate for a payload of \p bits at the given SINR, using the
/// BER curve with an effective coding gain per code rate. Monotone
/// decreasing in SINR.
[[nodiscard]] double packet_error_rate(const OfdmMcs& mcs, double sinr_linear,
                                       double bits = 12000.0);

/// The measurement-campaign primitive: the highest MCS whose delivery
/// ratio meets \p target_delivery at the given SINR (0 bps when even BPSK
/// 1/2 fails). This is the step function an empirical rate scan produces.
[[nodiscard]] BitsPerSecond best_measured_rate(Decibels sinr,
                                               double target_delivery = 0.9,
                                               double bits = 12000.0);

/// The SINR threshold at which the MCS first meets the target delivery —
/// the model-derived equivalent of RateTable::min_sinr_for.
[[nodiscard]] Decibels delivery_threshold(const OfdmMcs& mcs,
                                          double target_delivery = 0.9,
                                          double bits = 12000.0);

}  // namespace sic::phy

#endif  // SICMAC_PHY_ERROR_MODEL_HPP
