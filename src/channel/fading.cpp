#include "channel/fading.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sic::channel {

Ar1ShadowingTrack::Ar1ShadowingTrack(double rho, Decibels sigma, Rng& rng)
    : rho_(rho), sigma_db_(sigma.value()) {
  SIC_CHECK_MSG(rho >= 0.0 && rho <= 1.0, "AR(1) rho must be in [0,1]");
  SIC_CHECK_MSG(sigma_db_ >= 0.0, "sigma must be non-negative");
  state_db_ = rng.normal(0.0, sigma_db_);  // start in the stationary law
}

Decibels Ar1ShadowingTrack::step(Rng& rng) {
  const double innovation =
      std::sqrt(std::max(0.0, 1.0 - rho_ * rho_)) *
      rng.normal(0.0, sigma_db_);
  state_db_ = rho_ * state_db_ + innovation;
  return Decibels{state_db_};
}

}  // namespace sic::channel
