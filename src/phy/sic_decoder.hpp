#ifndef SICMAC_PHY_SIC_DECODER_HPP
#define SICMAC_PHY_SIC_DECODER_HPP

/// \file sic_decoder.hpp
/// The analytic SIC receiver model (Section 2.2): given two overlapping
/// arrivals and the bitrates their transmitters *chose* (for their own
/// receivers, not necessarily this one), determine what this receiver can
/// recover. This is the substitution for the paper's GNU Radio/USRP receiver
/// (DESIGN.md, substitution 3) and is exactly the model the paper's own
/// analysis assumes.
///
/// Decode chain:
///   1. The stronger signal is decodable iff its transmit rate is feasible
///      at SINR = S_strong / (S_weak + N0).
///   2. Only if step 1 succeeded, the stronger signal is reconstructed and
///      subtracted, leaving residual·S_strong of interference; the weaker
///      signal is decodable iff its transmit rate is feasible at
///      SINR = S_weak / (residual·S_strong + N0).
///
/// Without SIC capability, at most the stronger signal is recoverable
/// (classic capture), and the weaker never is.

#include "phy/capacity.hpp"
#include "phy/rate_adapter.hpp"
#include "util/units.hpp"

namespace sic::phy {

/// What a receiver recovered from a two-signal collision.
struct DecodeOutcome {
  bool stronger_decoded = false;
  bool weaker_decoded = false;

  [[nodiscard]] bool both() const { return stronger_decoded && weaker_decoded; }
  [[nodiscard]] bool none() const { return !stronger_decoded && !weaker_decoded; }

  friend bool operator==(const DecodeOutcome&, const DecodeOutcome&) = default;
};

/// Configuration of the receiver model.
struct SicDecoderConfig {
  /// Fraction of the cancelled signal's power left behind by imperfect
  /// channel estimation / reconstruction (Section 9). 0 = the paper's
  /// "perfect cancellation" assumption.
  double cancellation_residual = 0.0;

  /// Receivers with capture but no SIC (the -SIC baseline).
  bool sic_capable = true;

  /// ADC saturation guard (Section 9): when the stronger signal exceeds the
  /// weaker by more than this many dB, the weaker signal is unrecoverable
  /// even after cancellation. Disabled by default (paper's idealization);
  /// set to ~30-40 dB to model a real front end.
  Decibels max_decodable_disparity{1e9};
};

/// Stateless SIC receiver model parameterized by a rate-feasibility policy.
class SicDecoder {
 public:
  /// \p adapter must outlive the decoder.
  SicDecoder(const RateAdapter& adapter, SicDecoderConfig config = {});

  /// Attempts to recover both packets of a two-signal collision.
  /// \p rate_of_stronger / \p rate_of_weaker are the bitrates the respective
  /// transmitters are using.
  [[nodiscard]] DecodeOutcome decode(const TwoSignalArrival& arrival,
                                     BitsPerSecond rate_of_stronger,
                                     BitsPerSecond rate_of_weaker) const;

  /// Single arrival, interference-free: decodable iff rate feasible at S/N0.
  [[nodiscard]] bool decode_single(Milliwatts signal, Milliwatts noise,
                                   BitsPerSecond rate) const;

  [[nodiscard]] const SicDecoderConfig& config() const { return config_; }

 private:
  const RateAdapter* adapter_;
  SicDecoderConfig config_;
};

}  // namespace sic::phy

#endif  // SICMAC_PHY_SIC_DECODER_HPP
