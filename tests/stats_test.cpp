#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace sic::analysis {
namespace {

TEST(Summary, BasicMoments) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summary, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Cdf, AtAndFractionAbove) {
  const EmpiricalCdf cdf{{1.0, 2.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(2.0), 0.25);
}

TEST(Cdf, Quantiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const EmpiricalCdf cdf{std::move(xs)};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(Cdf, CurveEndpointsAndMonotonicity) {
  const EmpiricalCdf cdf{{3.0, 1.0, 2.0, 5.0, 4.0}};
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().x, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().x, 5.0);
  EXPECT_DOUBLE_EQ(curve.back().f, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].f, curve[i - 1].f);
  }
}

TEST(Cdf, EmptyRejected) {
  EXPECT_THROW(EmpiricalCdf{std::vector<double>{}}, std::logic_error);
}

TEST(Bootstrap, CoversTrueFraction) {
  // Bernoulli(0.3) samples: the CI around the empirical fraction should
  // cover 0.3 and shrink with sample size.
  Rng rng{5};
  std::vector<double> small_sample;
  std::vector<double> big_sample;
  for (int i = 0; i < 200; ++i) {
    small_sample.push_back(rng.chance(0.3) ? 2.0 : 0.5);
  }
  for (int i = 0; i < 5000; ++i) {
    big_sample.push_back(rng.chance(0.3) ? 2.0 : 0.5);
  }
  const auto ci_small = bootstrap_fraction_above(small_sample, 1.0);
  const auto ci_big = bootstrap_fraction_above(big_sample, 1.0);
  EXPECT_TRUE(ci_small.contains(ci_small.point));
  EXPECT_NEAR(ci_big.point, 0.3, 0.03);
  EXPECT_TRUE(ci_big.contains(ci_big.point));
  EXPECT_LT(ci_big.hi - ci_big.lo, ci_small.hi - ci_small.lo);
  EXPECT_LE(ci_big.lo, ci_big.point);
  EXPECT_GE(ci_big.hi, ci_big.point);
}

TEST(Bootstrap, DegenerateSamples) {
  const std::vector<double> all_above{2.0, 3.0, 4.0};
  const auto ci = bootstrap_fraction_above(all_above, 1.0);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
  const std::vector<double> none_above{0.1, 0.2};
  const auto ci0 = bootstrap_fraction_above(none_above, 1.0);
  EXPECT_DOUBLE_EQ(ci0.point, 0.0);
}

TEST(Bootstrap, DeterministicPerSeed) {
  std::vector<double> xs;
  Rng rng{9};
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 2.0));
  const auto a = bootstrap_fraction_above(xs, 1.0, 0.95, 500, 7);
  const auto b = bootstrap_fraction_above(xs, 1.0, 0.95, 500, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(QuantileSorted, KnownQuantilesInterpolate) {
  // 1..5: rank p*(n-1) with linear interpolation (R-7). p=0.25 lands at
  // rank 1.0 exactly; p=0.1 at rank 0.4 between the first two samples.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.1), 1.4);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.75), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.9), 4.6);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 5.0);
}

TEST(QuantileSorted, TwoPointInterpolation) {
  const std::vector<double> xs{10.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.975), 19.75);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 20.0);
}

TEST(Bootstrap, CiBoundsUseInterpolatedQuantiles) {
  // Regression for the truncation bug: the old percentile helper
  // truncated p*(resamples-1) toward zero, so BOTH bounds were pulled
  // toward lower order statistics — the upper bound in particular sat one
  // order statistic low whenever the rank was fractional. With a
  // half-above/half-below sample and a tiny resample count the CI must at
  // least stay centred: lo and hi symmetric around the point estimate.
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i < 500 ? 0.0 : 2.0);
  const auto ci = bootstrap_fraction_above(xs, 1.0, 0.95, 2000, 3);
  EXPECT_NEAR(ci.point, 0.5, 1e-12);
  EXPECT_NEAR((ci.lo + ci.hi) / 2.0, 0.5, 0.005);
  // ~95% CI for a fraction with n=1000 is roughly ±1.96*sqrt(.25/1000).
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 1.96 * std::sqrt(0.25 / 1000.0), 0.01);
}

TEST(Cdf, CurveDegenerateAllEqual) {
  const EmpiricalCdf cdf{{2.5, 2.5, 2.5}};
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.front().x, 2.5);
  EXPECT_DOUBLE_EQ(curve.front().f, 1.0);
}

TEST(Cdf, QuantileOutOfRangeRejected) {
  const EmpiricalCdf cdf{{1.0}};
  EXPECT_THROW((void)cdf.quantile(1.5), std::logic_error);
}

}  // namespace
}  // namespace sic::analysis
