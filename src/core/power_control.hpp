#ifndef SICMAC_CORE_POWER_CONTROL_HPP
#define SICMAC_CORE_POWER_CONTROL_HPP

/// \file power_control.hpp
/// Section 5.2: "gain with SIC can be increased by reducing the power of
/// the weaker client, when the RSSs at the AP of both clients are close."
/// Scaling the weaker client's transmit power by β ∈ (0, 1] moves the pair
/// along a trade-off — the stronger client's interference-limited rate
/// rises, the weaker client's clean rate falls — and the completion time
/// max(L/r₁(β), L/r₂(β)) is minimized where the two rates meet.
///
/// Shannon closed form: equal rates ⇔ S¹/(βS² + N₀) = βS²/N₀, a quadratic
/// in (βS²):  (βS²)² + N₀(βS²) − S¹N₀ = 0  ⇒  βS²* = (−N₀ + √(N₀² + 4S¹N₀))/2.
/// Power is only ever *reduced* (the paper rules out boosting, Section 5.4),
/// so when βS²* > S² no reduction helps and the pair is left untouched.
///
/// For non-Shannon (discrete) policies, the same objective is minimized by
/// a dB-domain grid search with local refinement — the objective is the max
/// of a non-increasing and a non-decreasing step function of β, so a fine
/// grid finds the optimum basin exactly. The implementation walks the grid
/// by rate plateaus (bisecting for the indices where either SIC rate steps,
/// i.e. the rate table's SINR thresholds) over scales precomputed once per
/// process, which returns bit-identical results to the exhaustive scan at a
/// fraction of its cost — the scan paid 282 std::pow calls per pair.

#include "core/upload_pair.hpp"

namespace sic::core {

struct PowerControlResult {
  /// Linear power scale applied to the weaker client (1.0 = no change).
  double scale = 1.0;
  /// Completion time after the optimization (== sic_airtime when no
  /// reduction helps).
  double airtime = 0.0;
  /// Rates actually achieved at the chosen scale.
  SicRatePair rates;
  /// Whether any reduction was applied.
  bool applied = false;
};

/// Minimizes the pair completion time over weaker-client power scales
/// β ∈ (0, 1]. Never returns a result worse than plain SIC.
[[nodiscard]] PowerControlResult optimize_weaker_power(
    const UploadPairContext& ctx);

/// Completion time with the optimal weaker-power reduction applied.
[[nodiscard]] double power_controlled_airtime(const UploadPairContext& ctx);

}  // namespace sic::core

#endif  // SICMAC_CORE_POWER_CONTROL_HPP
