#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer (the
# "sanitize" CMake preset) and runs the tier-1 ctest suite under it. Any
# heap error, leak, or UB aborts the run (-fno-sanitize-recover=all).
#
#   scripts/sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  ctest --preset sanitize -j "$(nproc)" "$@"
