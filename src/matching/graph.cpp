#include "matching/graph.hpp"

namespace sic::matching {

bool is_valid_mate_vector(std::span<const int> mate) {
  const int n = static_cast<int>(mate.size());
  for (int v = 0; v < n; ++v) {
    const int m = mate[v];
    if (m == -1) continue;
    if (m < 0 || m >= n || m == v) return false;
    if (mate[m] != v) return false;
  }
  return true;
}

}  // namespace sic::matching
