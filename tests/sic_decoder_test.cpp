#include "phy/sic_decoder.hpp"

#include <gtest/gtest.h>

namespace sic::phy {
namespace {

constexpr Hertz kB = megahertz(20.0);
constexpr Milliwatts kN0{1.0};

TwoSignalArrival arrival_db(double strong_db, double weak_db) {
  return TwoSignalArrival::make(Milliwatts{Decibels{strong_db}.linear()},
                                Milliwatts{Decibels{weak_db}.linear()}, kN0);
}

class SicDecoderTest : public ::testing::Test {
 protected:
  ShannonRateAdapter adapter_{kB};
};

TEST_F(SicDecoderTest, DecodesBothAtFeasibleRates) {
  const SicDecoder decoder{adapter_};
  const auto a = arrival_db(30.0, 15.0);
  const auto r1 = sic_rate_stronger(kB, a);
  const auto r2 = sic_rate_weaker(kB, a);
  const auto out = decoder.decode(a, r1, r2);
  EXPECT_TRUE(out.stronger_decoded);
  EXPECT_TRUE(out.weaker_decoded);
  EXPECT_TRUE(out.both());
}

TEST_F(SicDecoderTest, StrongerAboveFeasibleRateKillsBoth) {
  const SicDecoder decoder{adapter_};
  const auto a = arrival_db(30.0, 15.0);
  const auto r1_too_fast =
      BitsPerSecond{sic_rate_stronger(kB, a).value() * 1.01};
  const auto out = decoder.decode(a, r1_too_fast, sic_rate_weaker(kB, a));
  // Cannot decode the stronger ⇒ cannot cancel ⇒ weaker also lost.
  EXPECT_FALSE(out.stronger_decoded);
  EXPECT_FALSE(out.weaker_decoded);
  EXPECT_TRUE(out.none());
}

TEST_F(SicDecoderTest, WeakerAboveFeasibleRateLosesOnlyWeaker) {
  const SicDecoder decoder{adapter_};
  const auto a = arrival_db(30.0, 15.0);
  const auto r2_too_fast = BitsPerSecond{sic_rate_weaker(kB, a).value() * 1.01};
  const auto out = decoder.decode(a, sic_rate_stronger(kB, a), r2_too_fast);
  EXPECT_TRUE(out.stronger_decoded);
  EXPECT_FALSE(out.weaker_decoded);
}

TEST_F(SicDecoderTest, NonSicReceiverNeverRecoversWeaker) {
  SicDecoderConfig config;
  config.sic_capable = false;
  const SicDecoder decoder{adapter_, config};
  const auto a = arrival_db(30.0, 15.0);
  const auto out =
      decoder.decode(a, sic_rate_stronger(kB, a), sic_rate_weaker(kB, a));
  EXPECT_TRUE(out.stronger_decoded);
  EXPECT_FALSE(out.weaker_decoded);
}

TEST_F(SicDecoderTest, ResidualBlocksWeakerAtItsPerfectRate) {
  SicDecoderConfig config;
  config.cancellation_residual = 0.05;
  const SicDecoder decoder{adapter_, config};
  const auto a = arrival_db(30.0, 15.0);
  // The rate assumes perfect cancellation; 5% residual of a 30 dB signal
  // leaves ~17 dB of interference against a 15 dB signal.
  const auto out =
      decoder.decode(a, sic_rate_stronger(kB, a), sic_rate_weaker(kB, a));
  EXPECT_TRUE(out.stronger_decoded);
  EXPECT_FALSE(out.weaker_decoded);
}

TEST_F(SicDecoderTest, AdcSaturationGuard) {
  SicDecoderConfig config;
  config.max_decodable_disparity = Decibels{30.0};
  const SicDecoder decoder{adapter_, config};
  const auto near = arrival_db(35.0, 10.0);  // 25 dB apart: fine
  EXPECT_TRUE(decoder
                  .decode(near, sic_rate_stronger(kB, near),
                          sic_rate_weaker(kB, near))
                  .weaker_decoded);
  const auto far = arrival_db(45.0, 10.0);  // 35 dB apart: saturated
  EXPECT_FALSE(decoder
                   .decode(far, sic_rate_stronger(kB, far),
                           sic_rate_weaker(kB, far))
                   .weaker_decoded);
}

TEST_F(SicDecoderTest, DecodeSingleIsCleanSnrCheck) {
  const SicDecoder decoder{adapter_};
  const Milliwatts s{Decibels{20.0}.linear()};
  const auto feasible = shannon_rate(kB, s, kN0);
  EXPECT_TRUE(decoder.decode_single(s, kN0, feasible));
  EXPECT_FALSE(decoder.decode_single(
      s, kN0, BitsPerSecond{feasible.value() * 1.0001}));
}

TEST_F(SicDecoderTest, DiscreteAdapterIntegration) {
  // Example from Section 3.2: SNRs of 40/50/30 dB. T2 at r10 ⇒ both decode;
  // T2 at r30 ⇒ neither (with the discrete g table as the rate oracle).
  const DiscreteRateAdapter g{RateTable::dot11g()};
  const SicDecoder decoder{g};
  const auto a = arrival_db(50.0, 40.0);  // T2 stronger (50), T1 weaker (40)
  const auto r10 = g.rate(Decibels{10.0}.linear());
  const auto r30 = g.rate(Decibels{30.0}.linear());
  const auto r40 = g.rate(Decibels{40.0}.linear());
  ASSERT_GT(r30.value(), r10.value());
  // T2 transmitting at a rate supported by 10 dB SINR: both decodable.
  EXPECT_TRUE(decoder.decode(a, r10, r40).both());
  // T2 at a 30 dB rate: SINR of 10 dB cannot support it — both lost.
  EXPECT_TRUE(decoder.decode(a, r30, r40).none());
}

TEST(SicDecoderConfigTest, RejectsBadResidual) {
  const ShannonRateAdapter adapter{kB};
  SicDecoderConfig config;
  config.cancellation_residual = 1.5;
  EXPECT_THROW((SicDecoder{adapter, config}), std::logic_error);
}

}  // namespace
}  // namespace sic::phy
