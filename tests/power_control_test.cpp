#include "core/power_control.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db,
                         const phy::RateAdapter& adapter = kShannon) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 adapter);
}

TEST(PowerControl, NeverWorseThanPlainSic) {
  for (double s1 = 6.0; s1 <= 42.0; s1 += 4.0) {
    for (double s2 = 2.0; s2 <= s1; s2 += 4.0) {
      const auto ctx = ctx_db(s1, s2);
      EXPECT_LE(power_controlled_airtime(ctx), sic_airtime(ctx) + 1e-12)
          << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(PowerControl, HelpsWhenRssSimilar) {
  // Section 5.2: close RSSs make the stronger client the bottleneck;
  // reducing the weaker's power lifts the pair.
  const auto ctx = ctx_db(21.0, 20.0);
  const auto result = optimize_weaker_power(ctx);
  EXPECT_TRUE(result.applied);
  EXPECT_LT(result.scale, 1.0);
  EXPECT_LT(result.airtime, sic_airtime(ctx) * 0.75);
}

TEST(PowerControl, EqualizesRatesAtOptimum) {
  const auto ctx = ctx_db(22.0, 20.0);
  const auto result = optimize_weaker_power(ctx);
  ASSERT_TRUE(result.applied);
  EXPECT_NEAR(result.rates.stronger.value(), result.rates.weaker.value(),
              result.rates.weaker.value() * 1e-6);
}

TEST(PowerControl, NoOpWhenWeakerAlreadyBottleneck) {
  // S¹ far beyond the square point: the weaker link is the bottleneck and
  // only a boost (disallowed) would help.
  const auto ctx = ctx_db(40.0, 10.0);
  const auto result = optimize_weaker_power(ctx);
  EXPECT_FALSE(result.applied);
  EXPECT_DOUBLE_EQ(result.scale, 1.0);
  EXPECT_NEAR(result.airtime, sic_airtime(ctx), 1e-12);
}

TEST(PowerControl, ClosedFormMatchesGridSearch) {
  // The Shannon fast path must agree with brute-force search over scales.
  for (const auto& [s1, s2] : {std::pair{18.0, 16.0}, std::pair{25.0, 21.0},
                               std::pair{30.0, 29.0}}) {
    const auto ctx = ctx_db(s1, s2);
    const auto fast = optimize_weaker_power(ctx);
    double best = sic_airtime(ctx);
    for (int i = 1; i <= 4000; ++i) {
      const double db = -40.0 * i / 4000.0;
      UploadPairContext scaled = ctx;
      scaled.arrival.weaker =
          ctx.arrival.weaker * Decibels{db}.linear();
      best = std::min(best, sic_airtime(scaled));
    }
    EXPECT_NEAR(fast.airtime, best, best * 1e-3) << "s1=" << s1;
    EXPECT_LE(fast.airtime, best + best * 1e-6);
  }
}

TEST(PowerControl, DiscreteAdapterNeverWorse) {
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  for (double s1 = 10.0; s1 <= 40.0; s1 += 3.0) {
    for (double s2 = 6.0; s2 <= s1; s2 += 3.0) {
      const auto ctx = ctx_db(s1, s2, g);
      const auto result = optimize_weaker_power(ctx);
      EXPECT_LE(result.airtime, sic_airtime(ctx) + 1e-12)
          << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(PowerControl, DiscreteAdapterFindsStepImprovement) {
  // With 802.11g steps, a small reduction of the weaker client can bump
  // the stronger client across a rate threshold. At 26/25 dB, plain SIC
  // leaves the stronger at SINR ≈ 3.5 dB (rate 0!) — power control must
  // rescue the pair.
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const auto ctx = ctx_db(26.0, 25.0, g);
  const double plain = sic_airtime(ctx);
  const auto result = optimize_weaker_power(ctx);
  EXPECT_TRUE(std::isinf(plain));
  EXPECT_TRUE(std::isfinite(result.airtime));
  EXPECT_TRUE(result.applied);
}

/// The historical exhaustive grid search: every coarse point evaluated,
/// then every fine point around the best coarse hit, strict `<` keeping the
/// first minimum. The production plateau-skipping search must reproduce its
/// result bit for bit.
PowerControlResult exhaustive_grid_reference(const UploadPairContext& ctx) {
  auto evaluate_at_scale = [&](double scale) {
    UploadPairContext scaled = ctx;
    scaled.arrival.weaker = ctx.arrival.weaker * scale;
    PowerControlResult out;
    out.scale = scale;
    out.rates = sic_rates(scaled);
    out.airtime = sic_airtime(scaled);
    out.applied = scale < 1.0;
    return out;
  };
  PowerControlResult best = evaluate_at_scale(1.0);
  best.applied = false;
  if (ctx.arrival.weaker.value() <= 0.0) return best;
  constexpr double kMinDb = -40.0;
  constexpr int kCoarse = 201;
  double best_db = 0.0;
  for (int i = 0; i < kCoarse; ++i) {
    const double db = kMinDb + (0.0 - kMinDb) * i / (kCoarse - 1);
    const PowerControlResult cand =
        evaluate_at_scale(Decibels{db}.linear());
    if (cand.airtime < best.airtime) {
      best = cand;
      best_db = db;
    }
  }
  constexpr int kFine = 81;
  for (int i = 0; i < kFine; ++i) {
    const double db = std::min(0.0, best_db - 0.2 + 0.4 * i / (kFine - 1));
    const PowerControlResult cand =
        evaluate_at_scale(Decibels{db}.linear());
    if (cand.airtime < best.airtime) best = cand;
  }
  return best;
}

TEST(PowerControl, PlateauSearchBitIdenticalToExhaustiveGrid) {
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const phy::DiscreteRateAdapter b{phy::RateTable::dot11b()};
  const phy::DiscreteRateAdapter n{phy::RateTable::dot11n()};
  const phy::RateAdapter* const adapters[] = {&g, &b, &n};
  for (const phy::RateAdapter* adapter : adapters) {
    for (double s1 = 4.0; s1 <= 44.0; s1 += 2.0) {
      for (double s2 = 1.0; s2 <= s1; s2 += 2.0) {
        const auto ctx = ctx_db(s1, s2, *adapter);
        const auto fast = optimize_weaker_power(ctx);
        const auto slow = exhaustive_grid_reference(ctx);
        EXPECT_EQ(fast.scale, slow.scale)
            << adapter->name() << " s1=" << s1 << " s2=" << s2;
        EXPECT_EQ(fast.airtime, slow.airtime)
            << adapter->name() << " s1=" << s1 << " s2=" << s2;
        EXPECT_EQ(fast.applied, slow.applied)
            << adapter->name() << " s1=" << s1 << " s2=" << s2;
        EXPECT_EQ(fast.rates.stronger.value(), slow.rates.stronger.value())
            << adapter->name() << " s1=" << s1 << " s2=" << s2;
        EXPECT_EQ(fast.rates.weaker.value(), slow.rates.weaker.value())
            << adapter->name() << " s1=" << s1 << " s2=" << s2;
      }
    }
  }
}

TEST(PowerControl, ScaleAlwaysInUnitInterval) {
  Rng rng{9};
  for (int i = 0; i < 200; ++i) {
    const double s1 = rng.uniform(0.0, 45.0);
    const double s2 = rng.uniform(0.0, s1);
    const auto result = optimize_weaker_power(ctx_db(s1, s2));
    EXPECT_GT(result.scale, 0.0);
    EXPECT_LE(result.scale, 1.0);
  }
}

}  // namespace
}  // namespace sic::core
