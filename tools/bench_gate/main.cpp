/// bench_gate — CI bench-regression gate over one-line JSON bench
/// summaries (see gate.hpp for the comparison model).
///
///   bench_gate --baseline bench/baselines/BENCH_scheduler.json
///              --current BENCH_scheduler.json
///              --pin throughput:30% --pin wall_ms:50%:lower
/// (one command line; wrapped here for width)
///
/// Flags:
///   --baseline <file>      committed baseline summary (required)
///   --current <file>       freshly emitted summary (required)
///   --pin key[:tol%][:lower]   key to gate; may repeat (required)
///   --default-tol <pct>    tolerance when a pin names none (default 10)
///   --perturb key=factor   scale the current value before comparing —
///                          CI's synthetic-regression self-check
///
/// Exit codes: 0 gate passed; 1 regression (or pinned key missing);
/// 2 usage / file error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gate.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_gate --baseline <file> --current <file>\n"
      "                  --pin key[:tol%%][:lower] [--pin ...]\n"
      "                  [--default-tol pct] [--perturb key=factor]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error("cannot read " + path);
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string baseline_path;
    std::string current_path;
    std::vector<std::string> pin_specs;
    std::map<std::string, double> perturb;
    double default_tol = 0.10;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::runtime_error("flag " + arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--baseline") {
        baseline_path = next();
      } else if (arg == "--current") {
        current_path = next();
      } else if (arg == "--pin") {
        pin_specs.push_back(next());
      } else if (arg == "--default-tol") {
        default_tol = std::strtod(next().c_str(), nullptr) / 100.0;
      } else if (arg == "--perturb") {
        const std::string spec = next();
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw std::runtime_error("bad --perturb (key=factor): " + spec);
        }
        perturb[spec.substr(0, eq)] =
            std::strtod(spec.c_str() + eq + 1, nullptr);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        return usage();
      }
    }
    if (baseline_path.empty() || current_path.empty() || pin_specs.empty()) {
      return usage();
    }

    std::vector<sic::bench_gate::Pin> pins;
    pins.reserve(pin_specs.size());
    for (const std::string& spec : pin_specs) {
      pins.push_back(sic::bench_gate::parse_pin(spec, default_tol));
    }
    const auto baseline =
        sic::bench_gate::parse_flat_json(read_file(baseline_path));
    const auto current =
        sic::bench_gate::parse_flat_json(read_file(current_path));
    const auto report =
        sic::bench_gate::run_gate(baseline, current, pins, perturb);
    std::fputs(report.text().c_str(), stdout);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate error: %s\n", e.what());
    return 2;
  }
}
