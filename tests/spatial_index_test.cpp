#include "topology/spatial_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace sic::topology {
namespace {

std::vector<Point> random_points(std::uint64_t seed, int n, double extent) {
  Rng rng{seed};
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Point{rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return pts;
}

/// Reference k-nearest: sort every point by (distance, id).
std::vector<int> brute_k_nearest(const std::vector<Point>& pts, Point q,
                                 int k) {
  std::vector<int> ids(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) ids[i] = static_cast<int>(i);
  std::stable_sort(ids.begin(), ids.end(), [&](int a, int b) {
    const double da = distance(q, pts[static_cast<std::size_t>(a)]);
    const double db = distance(q, pts[static_cast<std::size_t>(b)]);
    return da < db || (da == db && a < b);
  });
  ids.resize(std::min(ids.size(), static_cast<std::size_t>(k)));
  return ids;
}

std::vector<int> brute_within(const std::vector<Point>& pts, Point q,
                              double r) {
  std::vector<int> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (distance(q, pts[i]) <= r) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(SpatialGridIndex, KNearestMatchesBruteForceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng{seed * 977};
    const int n = rng.uniform_int(1, 64);
    const std::vector<Point> pts = random_points(seed, n, 200.0);
    const SpatialGridIndex index{pts};
    std::vector<int> got;
    for (int trial = 0; trial < 25; ++trial) {
      const Point q{rng.uniform(-20.0, 220.0), rng.uniform(-20.0, 220.0)};
      const int k = rng.uniform_int(1, n + 2);
      index.k_nearest(q, k, got);
      EXPECT_EQ(got, brute_k_nearest(pts, q, k))
          << "seed " << seed << " trial " << trial << " k " << k;
    }
  }
}

TEST(SpatialGridIndex, WithinRadiusMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng{seed * 1231};
    const int n = rng.uniform_int(1, 64);
    const std::vector<Point> pts = random_points(seed + 500, n, 150.0);
    const SpatialGridIndex index{pts};
    std::vector<int> got;
    for (int trial = 0; trial < 25; ++trial) {
      const Point q{rng.uniform(-10.0, 160.0), rng.uniform(-10.0, 160.0)};
      const double r = rng.uniform(0.0, 120.0);
      index.within_radius(q, r, got);
      EXPECT_EQ(got, brute_within(pts, q, r))
          << "seed " << seed << " trial " << trial << " r " << r;
    }
  }
}

TEST(SpatialGridIndex, RingWalkCoversEveryPointExactlyOnce) {
  const std::vector<Point> pts = random_points(42, 37, 80.0);
  const SpatialGridIndex index{pts};
  const Point q{31.0, 55.0};
  std::vector<int> all;
  for (int ring = 0; ring <= index.max_ring(q); ++ring) {
    index.collect_ring(q, ring, all);
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), pts.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<int>(i));
  }
}

TEST(SpatialGridIndex, RingLowerBoundNeverExceedsTrueDistance) {
  // The association cutoff's correctness rests on this: a point collected
  // in ring r is at least ring_lower_bound_m(r) away from the query.
  const std::vector<Point> pts = random_points(7, 50, 120.0);
  const SpatialGridIndex index{pts};
  Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.uniform(-10.0, 130.0), rng.uniform(-10.0, 130.0)};
    std::vector<int> ring_ids;
    for (int ring = 0; ring <= index.max_ring(q); ++ring) {
      ring_ids.clear();
      index.collect_ring(q, ring, ring_ids);
      for (const int id : ring_ids) {
        EXPECT_LE(index.ring_lower_bound_m(ring),
                  distance(q, index.point(id)))
            << "ring " << ring << " id " << id;
      }
    }
  }
}

TEST(SpatialGridIndex, DegenerateLayouts) {
  // Empty set: every query is empty, no crash.
  const SpatialGridIndex empty{std::span<const Point>{}};
  std::vector<int> out{17};
  empty.k_nearest(Point{0.0, 0.0}, 3, out);
  EXPECT_TRUE(out.empty());
  empty.within_radius(Point{0.0, 0.0}, 10.0, out);
  EXPECT_TRUE(out.empty());

  // Single point and all-coincident points (zero extent).
  const std::vector<Point> same(5, Point{3.0, 4.0});
  const SpatialGridIndex coincident{same};
  coincident.k_nearest(Point{0.0, 0.0}, 3, out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  coincident.within_radius(Point{3.0, 4.0}, 0.0, out);
  EXPECT_EQ(out.size(), 5u);

  // Collinear points exercise a 1×n grid.
  std::vector<Point> line;
  for (int i = 0; i < 9; ++i) {
    line.push_back(Point{static_cast<double>(i) * 10.0, 5.0});
  }
  const SpatialGridIndex idx{line};
  idx.k_nearest(Point{42.0, 5.0}, 2, out);
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
}

TEST(SpatialGridIndex, ExplicitCellSizeHonored) {
  const std::vector<Point> pts = random_points(11, 30, 100.0);
  const SpatialGridIndex index{pts, 12.5};
  EXPECT_DOUBLE_EQ(index.cell_size_m(), 12.5);
  std::vector<int> got;
  index.k_nearest(Point{50.0, 50.0}, 30, got);
  EXPECT_EQ(got, brute_k_nearest(pts, Point{50.0, 50.0}, 30));
}

}  // namespace
}  // namespace sic::topology
