#ifndef SICMAC_MAC_CHAOS_HPP
#define SICMAC_MAC_CHAOS_HPP

/// \file chaos.hpp
/// Deployment-scale fault injection. mac/fault_model perturbs one
/// scheduled-upload run (per-round AR(1) drift, cancellation failures,
/// ACK loss); this layer generalizes it to the faults only a fleet can
/// experience: timed AP crashes and restarts, correlated interference
/// bursts that bury a whole cell, and churn storms that turn over the
/// client population. A FaultSchedule composes two sources:
///
///  - a ChaosProfile of per-epoch rates (AP outage probability, burst
///    probability and depth, client departure probability, arrival rate,
///    churn-storm probability), resolved by seeded draws; and
///  - an explicit list of TimedChaosEvents pinned to epochs, for
///    reproducing a specific incident (tests script "AP 0 dies at epoch
///    3 for 5 epochs" this way).
///
/// resolve() is pure given (epoch, fleet state, rng): the engine passes a
/// counter-based per-epoch Rng substream, so the chaos stream is
/// bit-identical for any thread count and any earlier history. A
/// default-constructed schedule is inert: no draws, no events.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mac/fault_model.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sic::mac {

/// Stochastic per-epoch fault rates. All-zero (the default) is inert.
/// Validation throws FaultConfigError — same taxonomy as FaultConfig.
struct ChaosProfile {
  /// Probability a live AP crashes this epoch.
  double ap_outage_prob = 0.0;
  /// Epochs a crashed AP stays down before restarting.
  int outage_epochs = 3;
  /// Probability a live AP takes a correlated interference burst this
  /// epoch — an external emitter burying every uplink in the cell.
  double burst_prob = 0.0;
  /// Unplanned attenuation of every member's effective RSS under a burst.
  Decibels burst_depth{20.0};
  /// Epochs a burst persists.
  int burst_epochs = 2;
  /// Probability an active client departs this epoch.
  double departure_prob = 0.0;
  /// Expected client arrivals per epoch (fractional part resolved by a
  /// Bernoulli draw).
  double arrival_rate = 0.0;
  /// Probability a churn storm starts this epoch.
  double storm_prob = 0.0;
  /// Multiplier applied to departure_prob and arrival_rate while a storm
  /// is active.
  double storm_multiplier = 8.0;
  /// Epochs a storm lasts.
  int storm_epochs = 2;

  [[nodiscard]] bool any() const {
    return ap_outage_prob > 0.0 || burst_prob > 0.0 || departure_prob > 0.0 ||
           arrival_rate > 0.0 || storm_prob > 0.0;
  }
  /// FaultConfigError on NaNs, negative rates/durations, or probabilities
  /// outside [0,1].
  void validate() const;
};

/// One scripted fault, pinned to an epoch.
enum class ChaosEventKind : std::uint8_t {
  kApOutage,   ///< target AP goes down for duration_epochs
  kApRestart,  ///< target AP comes back up immediately
  kBurst,      ///< target AP takes a burst of `depth` for duration_epochs
  kStorm,      ///< churn storm for duration_epochs
  kArrivals,   ///< `count` clients arrive this epoch
};

struct TimedChaosEvent {
  int epoch = 0;
  ChaosEventKind kind = ChaosEventKind::kApOutage;
  int ap = -1;  ///< target AP for outage/restart/burst; -1 = every AP
  int duration_epochs = 1;
  Decibels depth{20.0};  ///< burst only
  int count = 0;         ///< arrivals only
};

/// Everything the schedule resolved for one epoch, in deterministic
/// order: scripted events first, then stochastic draws (outages by AP id,
/// bursts by AP id, departures by position in the active-client span,
/// then the arrival and storm draws).
struct EpochChaos {
  struct Outage {
    int ap = 0;
    int epochs = 1;
  };
  struct Burst {
    int ap = 0;
    Decibels depth{0.0};
    int epochs = 1;
  };
  std::vector<Outage> outages;
  std::vector<Burst> bursts;
  std::vector<int> departures;  ///< client ids leaving this epoch
  int arrivals = 0;
  int storm_epochs = 0;  ///< >0: a storm starts, lasting this many epochs
};

/// Seeded, schedule-driven fault injector: profile rates + timed events.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(const ChaosProfile& profile);

  /// Appends a scripted event; returns *this so incidents compose:
  /// `FaultSchedule{}.add({.epoch = 3, .kind = kApOutage, .ap = 0})`.
  FaultSchedule& add(const TimedChaosEvent& event);

  [[nodiscard]] const ChaosProfile& profile() const { return profile_; }
  [[nodiscard]] bool empty() const {
    return !profile_.any() && events_.empty();
  }

  /// Resolves epoch \p epoch against the current fleet. \p ap_alive flags
  /// index APs; only live APs draw outage/burst trials. \p clients are
  /// the active client ids in ascending order. \p churn_multiplier scales
  /// departure/arrival rates (the engine passes its active-storm factor).
  /// Zero-probability knobs take no draws, so composing a timed-only
  /// schedule never consumes entropy.
  [[nodiscard]] EpochChaos resolve(int epoch,
                                   std::span<const std::uint8_t> ap_alive,
                                   std::span<const int> clients,
                                   double churn_multiplier, Rng& rng) const;

  /// Named profiles for the CLI / bench: "none", "default" (1% AP
  /// outage/epoch, 2% churn, 5% bursts), "outage" (outage-heavy),
  /// "burst" (burst-heavy), "churn" (churn storms). \p expected_clients
  /// sizes the arrival rate so the population is stationary in
  /// expectation. FaultConfigError on an unknown name.
  [[nodiscard]] static FaultSchedule preset(std::string_view name,
                                            int expected_clients);

 private:
  ChaosProfile profile_;
  std::vector<TimedChaosEvent> events_;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_CHAOS_HPP
