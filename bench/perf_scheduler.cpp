/// Performance and quality of the SIC-aware scheduler (Section 6): end-to-
/// end schedule construction (pair costs + blossom matching) versus client
/// count, the greedy-pairing ablation, and the cost of enabling the
/// Section 5 techniques in the pair-cost model.

#include <benchmark/benchmark.h>

#include "perf_util.hpp"

#include <vector>

#include "core/pair_cost_engine.hpp"
#include "core/scheduler.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

namespace {

using namespace sic;

std::vector<channel::LinkBudget> random_clients(int n, std::uint64_t seed) {
  Rng rng{seed};
  topology::SamplerConfig config;
  return topology::sample_upload_clients(rng, config, n);
}

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

void BM_ScheduleUpload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  double gain = 0.0;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    gain = core::serial_upload_airtime(clients, kShannon,
                                       options.packet_bits) /
           schedule.total_airtime;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["gain_vs_serial"] = gain;
}
BENCHMARK(BM_ScheduleUpload)->RangeMultiplier(2)->Range(4, 64);

void BM_ScheduleUploadGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  options.pairing = core::SchedulerOptions::Pairing::kGreedy;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
}
BENCHMARK(BM_ScheduleUploadGreedy)->RangeMultiplier(2)->Range(4, 64);

void BM_ScheduleUploadWithTechniques(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  double gain = 0.0;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    gain = core::serial_upload_airtime(clients, kShannon,
                                       options.packet_bits) /
           schedule.total_airtime;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["gain_vs_serial"] = gain;
}
BENCHMARK(BM_ScheduleUploadWithTechniques)->RangeMultiplier(2)->Range(4, 64);

// The discrete-rate scheduler with both techniques on — the configuration
// whose pair kernel is dominated by the power-control grid search.
void BM_ScheduleUploadDiscretePc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  const phy::DiscreteRateAdapter adapter{phy::RateTable::dot11g()};
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  double gain = 0.0;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, adapter, options);
    gain = core::serial_upload_airtime(clients, adapter,
                                       options.packet_bits) /
           schedule.total_airtime;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["gain_vs_serial"] = gain;
}
BENCHMARK(BM_ScheduleUploadDiscretePc)->RangeMultiplier(2)->Range(16, 64);

// Cold build: every pair dirty, the historical from-scratch cost.
void BM_EngineColdBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  std::uint64_t evals = 0;
  for (auto _ : state) {
    core::PairCostEngine engine{kShannon, options};
    engine.set_clients(clients);
    const auto schedule = engine.schedule();
    evals = engine.stats().pair_evals;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["pair_evals_cold"] = static_cast<double>(evals);
}
BENCHMARK(BM_EngineColdBuild)->RangeMultiplier(4)->Range(16, 256);

// Warm rebuild after `drift` clients move: the round-boundary re-matching
// cost the closed-loop executor pays. drift = 1 models a single stale
// estimate; drift = n/4 a windy round.
void BM_EngineWarmRebuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int drift = static_cast<int>(state.range(1));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  core::PairCostEngine engine{kShannon, options};
  engine.set_clients(clients);
  benchmark::DoNotOptimize(engine.schedule().total_airtime);
  Rng rng{23};
  std::uint64_t warm_evals = 0;
  std::uint64_t builds = 0;
  for (auto _ : state) {
    const std::uint64_t before = engine.stats().pair_evals;
    for (int d = 0; d < drift; ++d) {
      const int c = rng.uniform_int(0, n - 1);
      const double jitter = rng.uniform(0.9, 1.1);
      engine.update_client(
          c, clients[static_cast<std::size_t>(c)].rss * jitter);
    }
    const auto schedule = engine.schedule();
    warm_evals += engine.stats().pair_evals - before;
    ++builds;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["pair_evals_warm"] =
      builds > 0 ? static_cast<double>(warm_evals) /
                       static_cast<double>(builds)
                 : 0.0;
  state.counters["pair_evals_cold"] =
      static_cast<double>(n) * (n - 1) / 2.0;
}
BENCHMARK(BM_EngineWarmRebuild)
    ->ArgsProduct({{16, 64, 256}, {1}})
    ->Args({16, 4})
    ->Args({64, 16})
    ->Args({256, 64});

void BM_PairPlan(benchmark::State& state) {
  const auto clients = random_clients(2, 11);
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  for (auto _ : state) {
    const auto plan =
        core::best_pair_plan(clients[0], clients[1], kShannon, options);
    benchmark::DoNotOptimize(plan.airtime);
  }
}
BENCHMARK(BM_PairPlan);

}  // namespace

SIC_PERF_MAIN("perf_scheduler")
