#ifndef SICMAC_CORE_PACKET_SIZING_HPP
#define SICMAC_CORE_PACKET_SIZING_HPP

/// \file packet_sizing.hpp
/// Section 3's gap-filling by packet sizing: "the gap in the air-times of
/// packets can be filled by having T2 transmit a large packet…. It may not
/// always be practical — protocol limits on packet sizes prevent [it]."
///
/// This module generalizes the eq (5)/(6) algebra to unequal packet
/// lengths and computes the optimal (air-time-equalizing) length for the
/// faster link, clamped to a protocol MTU. With the clamp at the default
/// 802.11 limit the paper's pessimism reproduces: the slack is usually too
/// large for one jumbo frame to fill.

#include "core/upload_pair.hpp"

namespace sic::core {

/// Serial exchange of La bits from the stronger client and Lb bits from
/// the weaker, each at its clean best rate — eq (5) with unequal lengths.
[[nodiscard]] double serial_airtime_unequal(const UploadPairContext& ctx,
                                            double bits_stronger,
                                            double bits_weaker);

/// Concurrent SIC exchange with unequal lengths — eq (6) generalized:
/// max(La/r1, Lb/r2).
[[nodiscard]] double sic_airtime_unequal(const UploadPairContext& ctx,
                                         double bits_stronger,
                                         double bits_weaker);

struct PacketSizingPlan {
  /// Chosen payload for the faster (under SIC) link; the slower link keeps
  /// ctx.packet_bits.
  double fast_link_bits = 0.0;
  /// True when the equalizing size exceeded the MTU and was clamped.
  bool mtu_limited = false;
  /// Completion time of the sized exchange.
  double airtime = 0.0;
  /// Throughput-normalized gain vs a serial exchange of the same bits.
  double gain = 1.0;
};

/// Fills the air-time gap by growing the faster link's packet up to
/// \p mtu_bits: the §3 "large packet" alternative to packet trains.
/// The slower link sends ctx.packet_bits; the faster link sends
/// min(mtu, rate_fast · t_slow) bits so both finish together when the MTU
/// allows. The default MTU is the 802.11 maximum MSDU (2304 bytes), which
/// is why the paper calls this impractical: similar-RSS pairs need many
/// times that.
[[nodiscard]] PacketSizingPlan fill_gap_with_packet_size(
    const UploadPairContext& ctx, double mtu_bits = 2304.0 * 8.0);

}  // namespace sic::core

#endif  // SICMAC_CORE_PACKET_SIZING_HPP
