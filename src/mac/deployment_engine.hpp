#ifndef SICMAC_MAC_DEPLOYMENT_ENGINE_HPP
#define SICMAC_MAC_DEPLOYMENT_ENGINE_HPP

/// \file deployment_engine.hpp
/// Persistent multi-AP serving engine — the ROADMAP's "city-scale" layer
/// over the single-cell closed loop. The engine shards clients across APs
/// (nearest-AP by received power, load-aware handoff with dB hysteresis so
/// clients don't flap), advances one *epoch* at a time, and within each
/// epoch plans every serving AP's schedule through that AP's persistent
/// core::PairCostEngine — re-matching only APs something actually dirtied
/// (membership change, outage/restart, ladder step, watchdog) — then
/// executes the schedule on the discrete-event simulator via
/// run_scheduled_upload.
///
/// Chaos (mac/chaos.hpp) feeds the epoch stream: timed or stochastic AP
/// crashes/restarts, correlated interference bursts, client churn and
/// churn storms, on top of the per-run faults of mac/fault_model. The
/// recovery side is layered:
///
///  - the *inner* closed loop (PR 1) retries/re-matches within the epoch;
///  - a per-AP degradation ladder steps the planning options down
///    (multirate → SIC → power control → serial) while the AP's epoch
///    confirmation rate is unhealthy, and back up after a healthy streak;
///  - persistently failing clients are quarantined with exponential-
///    backoff re-admission, so hopeless links stop burning airtime;
///  - an epoch watchdog detects a stuck AP (offered frames but zero
///    confirmations for K straight epochs) and forces re-estimation plus
///    a full re-match.
///
/// Estimates are refreshed only when an AP re-matches, so channel drift
/// accumulates against the plan on quiet APs — the health feedback above
/// is what closes that loop at deployment scale.
///
/// Determinism: every stochastic stream is counter-based (util/rng.hpp
/// Rng::at). Engine-level draws (drift steps, chaos resolution, arrival
/// placement) happen sequentially on the calling thread from one
/// per-epoch substream; each AP-epoch's inner run gets its own substream
/// (epoch_seed). The two parallel phases are both order-invariant: the
/// association score phase writes index-addressed proposals against a
/// start-of-epoch snapshot (mac/association.hpp) and the serve phase only
/// ever runs whole APs, with per-AP scratch metric registries merged in
/// AP order — so results and obs counter maps are bit-identical for any
/// thread count. With one AP
/// and no chaos, an epoch is bit-identical to planning with
/// core::schedule_upload and executing with run_scheduled_upload directly
/// (pinned in tests/deployment_engine_test.cpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/pathloss.hpp"
#include "core/pair_cost_engine.hpp"
#include "mac/association.hpp"
#include "mac/chaos.hpp"
#include "mac/upload_sim.hpp"
#include "topology/geometry.hpp"
#include "util/thread_pool.hpp"

namespace sic::mac {

/// Deployment-level conservation laws, checked once per epoch when an
/// InvariantAuditor is attached. The engine builds this snapshot only
/// when audited (zero-cost-when-detached, like sic::obs).
struct EpochInvariants {
  int epoch = 0;
  std::uint64_t offered = 0;      ///< frames handed to serving APs
  std::uint64_t confirmed = 0;    ///< frames the inner loop confirmed
  std::uint64_t unrecovered = 0;  ///< frames the inner loop abandoned
  std::uint64_t deferred = 0;     ///< active clients with no live AP
  std::vector<std::uint8_t> ap_alive;     ///< per AP
  std::vector<std::uint8_t> active;       ///< per client
  std::vector<std::uint8_t> quarantined;  ///< per client
  std::vector<int> assignment;  ///< per client: serving AP id or -1
  std::vector<int> served_by;   ///< per client: AP that ran its slot, or -1
};

/// Collects invariant violations instead of throwing, so a single audit
/// pass over a chaotic run reports every broken law with its epoch.
class InvariantAuditor {
 public:
  struct Violation {
    int epoch = 0;
    std::string what;
  };

  /// Audits one epoch snapshot:
  ///  - conservation: confirmed + unrecovered == offered, and every
  ///    active client is exactly one of served / deferred / quarantined;
  ///  - liveness: no client assigned to or served by a dead AP;
  ///  - quarantine: the quarantine set is disjoint from assignments and
  ///    from the clients any matching served.
  void check(const EpochInvariants& snapshot);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t epochs_checked() const {
    return epochs_checked_;
  }

 private:
  std::vector<Violation> violations_;
  std::uint64_t epochs_checked_ = 0;
};

struct DeploymentEngineConfig {
  /// Per-AP planning options at ladder level 0 (packet_bits is taken from
  /// upload.packet_bits). Ladder level 1 clears enable_multirate, level 2
  /// additionally clears enable_power_control, level 3 plans serial solo
  /// slots without matching.
  core::SchedulerOptions scheduler{};
  /// Template for every inner AP-epoch run. The engine owns seed,
  /// faults.initial_drift (must be empty here), recovery.enabled and
  /// recovery.rematch_options; everything else passes through. horizon is
  /// the per-epoch time budget.
  UploadSimConfig upload{};
  /// Master switch: false = open-loop deployment (inner recovery off, no
  /// ladder, no watchdog, no quarantine) — the ablation baseline.
  bool closed_loop = true;

  // Radio geometry: log-distance path loss from client positions.
  double pathloss_exponent = 3.0;
  Dbm client_tx_power{15.0};
  Dbm noise_floor{-94.0};

  /// Epoch-scale AR(1) channel drift per client (slow shadowing across
  /// epochs, distinct from upload.faults.stale_rss_sigma which drifts
  /// *within* a run). 0 dB disables the stream entirely.
  Decibels epoch_drift_sigma{0.0};
  double epoch_drift_rho = 0.9;

  // Association / handoff.
  Decibels handoff_hysteresis{4.0};  ///< candidate must win by this much
  Decibels load_penalty_per_client{0.5};  ///< effective dB per member
  /// Candidate enumeration for the association pass: kGrid walks the
  /// spatial AP index with an exact cutoff (the large-deployment fast
  /// path), kBruteForce scans every AP — decision-identical, kept as the
  /// reference (pinned in tests/association_test.cpp).
  AssociationMode association_mode = AssociationMode::kGrid;

  // Quarantine ladder (closed loop only).
  bool enable_quarantine = true;
  int quarantine_after = 3;  ///< consecutive failed epochs before exile
  int quarantine_base_epochs = 2;  ///< backoff: base · 2^(times - 1)

  // Per-AP degradation ladder + watchdog (closed loop only).
  double unhealthy_below = 0.90;  ///< epoch confirmation rate threshold
  int ladder_recover_epochs = 3;  ///< healthy streak to step back up
  int watchdog_epochs = 3;  ///< all-fail epochs before forcing re-match

  /// New arrivals are placed uniformly in a disc of this radius around a
  /// uniformly drawn AP site.
  double arrival_radius_m = 40.0;

  int threads = 1;  ///< 0 = all hardware threads; results identical
  std::uint64_t seed = 1;
};

/// What one epoch did, for recovery-time curves and the auditor.
struct EpochStats {
  int epoch = 0;
  std::uint64_t offered = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t unrecovered = 0;
  std::uint64_t deferred = 0;
  std::uint64_t decisions = 0;  ///< scheduled slots planned this epoch
  int live_aps = 0;
  int active_clients = 0;
  int quarantined_clients = 0;
  int handoffs = 0;
  int rematched_aps = 0;
  int outages_started = 0;
  int bursts_started = 0;
  int arrivals = 0;
  int departures = 0;
  int quarantines = 0;
  int readmissions = 0;
  int ladder_steps = 0;
  int watchdog_fires = 0;
  /// Mean per-AP health over the APs that served this epoch (1.0 when no
  /// AP served). Health folds an AP's confirmation rate, retry pressure,
  /// quarantine occupancy, and handoff flux into one [0,1] figure:
  ///   health = conf · 1/(1+retries/offered) · (1−quarantined/population)
  ///                 · 1/(1+handoffs/members)
  /// Each factor is 1.0 when the cell is calm, so a healthy AP scores
  /// ~1.0 and every kind of distress pulls the score down smoothly.
  double mean_health = 1.0;

  [[nodiscard]] double confirmation_rate() const {
    return offered == 0 ? 1.0
                        : static_cast<double>(confirmed) /
                              static_cast<double>(offered);
  }
};

/// Lifetime health aggregate of one AP, for `sicmac deploy
/// --health-summary`. Epochs where the AP did not serve (dead, or no
/// members) do not contribute.
struct ApHealthSummary {
  int ap = 0;
  std::uint64_t epochs_served = 0;
  double mean_health = 1.0;
  double min_health = 1.0;
  double mean_confirmation = 1.0;
};

struct DeploymentResult {
  std::vector<EpochStats> epochs;
  std::uint64_t offered = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t unrecovered = 0;
  std::uint64_t deferred = 0;
  std::uint64_t decisions = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t watchdog_fires = 0;

  [[nodiscard]] double confirmation_rate() const {
    return offered == 0 ? 1.0
                        : static_cast<double>(confirmed) /
                              static_cast<double>(offered);
  }
};

class DeploymentEngine {
 public:
  /// \p adapter must outlive the engine. Throws FaultConfigError on a
  /// malformed upload fault config or chaos profile.
  DeploymentEngine(std::vector<topology::Point> ap_sites,
                   const phy::RateAdapter& adapter,
                   const DeploymentEngineConfig& config,
                   FaultSchedule chaos = {});
  ~DeploymentEngine();

  DeploymentEngine(const DeploymentEngine&) = delete;
  DeploymentEngine& operator=(const DeploymentEngine&) = delete;

  /// Registers a client at \p position; ids are dense and stable. The
  /// client associates at the next epoch's handoff pass.
  int add_client(topology::Point position);
  /// Deactivates a client between epochs (departure); its AP re-matches.
  void remove_client(int client);

  /// Attach (or detach with nullptr) the epoch invariant auditor. When
  /// detached the engine never builds the snapshot.
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }

  EpochStats run_epoch();
  DeploymentResult run_epochs(int n);

  [[nodiscard]] int n_aps() const;
  [[nodiscard]] int epoch() const { return epoch_; }
  [[nodiscard]] bool ap_alive(int ap) const;
  [[nodiscard]] int ladder_level(int ap) const;
  [[nodiscard]] int active_clients() const;
  [[nodiscard]] bool client_active(int client) const;
  [[nodiscard]] bool quarantined(int client) const;
  /// Serving AP of \p client, or -1 when unassigned/quarantined/inactive.
  [[nodiscard]] int assignment(int client) const;
  /// Member list of \p ap — always sorted ascending by client id (the
  /// sorted-membership regression test pins this after churn).
  [[nodiscard]] const std::vector<int>& ap_members(int ap) const;
  /// Cumulative result over every epoch run so far.
  [[nodiscard]] const DeploymentResult& result() const { return result_; }
  /// Inner-run result of \p ap 's most recent served epoch (for the
  /// old-vs-new bit-identity pin).
  [[nodiscard]] const UploadSimResult& last_ap_result(int ap) const;
  /// Lifetime per-AP health aggregates, AP-id order (one entry per AP,
  /// including APs that never served).
  [[nodiscard]] std::vector<ApHealthSummary> health_summary() const;
  /// Nominal (drift-free) link budget of \p client toward \p ap.
  [[nodiscard]] channel::LinkBudget nominal_budget(int client, int ap) const;

  /// Seed of the inner simulator run of (\p ap, \p epoch) under engine
  /// seed \p seed — exposed so tests can drive run_scheduled_upload with
  /// exactly the seed the engine uses.
  [[nodiscard]] static std::uint64_t epoch_seed(std::uint64_t seed, int ap,
                                                int epoch);

 private:
  struct ApState;
  struct ClientState;

  [[nodiscard]] Rng epoch_rng() const;
  [[nodiscard]] core::SchedulerOptions ladder_options(int level) const;
  void apply_chaos(const EpochChaos& chaos, EpochStats& stats);
  /// Two-phase association pass: a parallel score phase over the
  /// AssociationPlanner (SoA inputs, snapshot AP state, bit-identical at
  /// any thread count) and a sequential commit phase in client-id order.
  /// \p handoff_flux (size n_aps) accumulates per-AP association churn
  /// this epoch: +1 on each AP a handoff touches, +1 on the AP gaining a
  /// previously unassigned client — the flux input of the health score.
  void associate_clients(EpochStats& stats, std::vector<int>& handoff_flux);
  void score_health(const std::vector<int>& serving,
                    const std::vector<int>& handoff_flux, EpochStats& stats);
  void serve_ap(ApState& ap);
  void audit_epoch(const EpochStats& stats,
                   const std::vector<int>& served_by) const;

  const phy::RateAdapter* adapter_;
  DeploymentEngineConfig config_;
  FaultSchedule chaos_;
  channel::LogDistancePathLoss pathloss_;
  Milliwatts noise_mw_{0.0};
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<AssociationPlanner> assoc_planner_;
  std::vector<ApState> aps_;
  std::vector<ClientState> clients_;
  /// SoA mirror of client positions for the batched association phase —
  /// positions are immutable after add_client, so the mirror is
  /// append-only; the per-epoch flags below are rebuilt in one O(clients)
  /// pass each epoch and reused as scratch to avoid reallocation.
  std::vector<double> client_x_;
  std::vector<double> client_y_;
  std::vector<std::uint8_t> assoc_eligible_;
  std::vector<int> assoc_incumbent_;
  std::vector<std::uint8_t> ap_alive_scratch_;
  std::vector<int> ap_members_scratch_;
  std::vector<AssociationProposal> proposals_;
  InvariantAuditor* auditor_ = nullptr;
  int epoch_ = 0;
  int storm_until_ = 0;  ///< churn multiplier active while epoch_ < this
  DeploymentResult result_;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_DEPLOYMENT_ENGINE_HPP
