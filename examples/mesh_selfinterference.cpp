/// Multihop mesh self-interference (Section 4.3, Fig. 7c): packets route
/// A → C → D → E over a long-short-long chain — "a perfect recipe for SIC
/// at C": the A→C and D→E transmissions can run concurrently because C can
/// decode (and cancel) D's strong signal. The example sweeps the hop
/// geometry to expose the paper's tension:
///
///   - short hops: D's rate to E is too high for C to decode → no SIC;
///   - long hops: SIC turns on and pipelining gains up to ~1.5×, but the
///     long hops themselves throttle the absolute end-to-end throughput
///     ("the long-hop transmissions become the bottleneck").

#include <cstdio>

#include "core/mesh.hpp"
#include "topology/scenarios.hpp"

int main() {
  using namespace sic;
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};

  std::printf("%-10s %-10s %-9s %-8s %-14s %-14s\n", "long (m)", "short (m)",
              "SIC at C", "gain", "serial Mbps", "pipelined Mbps");
  for (double long_hop = 15.0; long_hop <= 45.0; long_hop += 5.0) {
    auto chain = topology::make_mesh_chain(long_hop, 10.0);
    // Outdoor-urban mesh propagation: α = 4 gives the spatial isolation a
    // real deployment relies on; mesh radios run a bit hotter than clients.
    chain.pathloss = channel::LogDistancePathLoss::for_carrier(4.0);
    for (auto& node : chain.nodes) node.tx_power = Dbm{23.0};

    const auto report = core::analyze_mesh_chain(chain, adapter);
    std::printf("%-10.0f %-10.0f %-9s %-8.3f %-14.1f %-14.1f\n", long_hop,
                10.0, report.sic_feasible_at_relay ? "yes" : "no",
                report.gain, report.serial_throughput_bps / 1e6,
                report.pipelined_throughput_bps / 1e6);
  }

  std::printf(
      "\nNote the paper's trade-off: stretching the long hops switches SIC "
      "on (C can decode D's now-lower-rate signal) and the pipelining gain "
      "climbs toward 1.5x, but the absolute end-to-end throughput still "
      "falls — the long hops are the bottleneck either way.\n");
  return 0;
}
