#ifndef SICMAC_TOPOLOGY_NODE_HPP
#define SICMAC_TOPOLOGY_NODE_HPP

/// \file node.hpp
/// Nodes of a wireless topology: access points, clients and mesh relays.

#include <cstdint>
#include <string>

#include "topology/geometry.hpp"
#include "util/units.hpp"

namespace sic::topology {

using NodeId = std::uint32_t;

enum class NodeRole : std::uint8_t {
  kAccessPoint,
  kClient,
  kMeshRelay,
};

[[nodiscard]] constexpr const char* to_string(NodeRole role) {
  switch (role) {
    case NodeRole::kAccessPoint: return "AP";
    case NodeRole::kClient: return "client";
    case NodeRole::kMeshRelay: return "relay";
  }
  return "?";
}

/// A positioned radio with a transmit power.
struct Node {
  NodeId id = 0;
  NodeRole role = NodeRole::kClient;
  Point position;
  Dbm tx_power{20.0};  // typical 802.11 client EIRP

  friend bool operator==(const Node&, const Node&) = default;
};

}  // namespace sic::topology

#endif  // SICMAC_TOPOLOGY_NODE_HPP
